#include "support/bytes.h"

namespace deflection {

static const char kHexDigits[] = "0123456789abcdef";

std::string to_hex(BytesView v) {
  std::string out;
  out.reserve(v.size() * 2);
  for (std::uint8_t b : v) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

static int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Bytes from_hex(const std::string& s) {
  Bytes out;
  if (s.size() % 2 != 0) return out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    int hi = hex_val(s[i]);
    int lo = hex_val(s[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace deflection
