#include "support/fault.h"

#include <algorithm>

namespace deflection {

namespace {

// FNV-1a, so a site's RNG stream depends on its name but not on the order
// sites are first touched.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Rng FaultPlan::site_rng(const std::string& site) const {
  return Rng(seed_ ^ hash_name(site));
}

bool FaultPlan::decide(const FaultSpec& spec, Rng& rng, std::uint64_t index,
                       std::uint64_t fired_so_far) {
  // Exactly one draw per check whenever probability is in play, whatever
  // the schedule says — the replay oracle depends on this.
  bool by_chance = spec.probability > 0.0 && rng.chance(spec.probability);
  bool by_schedule =
      std::find(spec.schedule.begin(), spec.schedule.end(), index) != spec.schedule.end();
  return (by_chance || by_schedule) && fired_so_far < spec.max_fires;
}

void FaultPlan::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard lock(mutex_);
  Site& s = sites_[site];
  s.spec = std::move(spec);
  s.rng = site_rng(site);
  s.counters = SiteCounters{};
}

Status FaultPlan::check(const std::string& site) {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Never armed: count the coverage, fire nothing. The site is created so
    // counters() reports every site the run actually reached.
    ++sites_[site].counters.armed;
    return Status::ok();
  }
  Site& s = it->second;
  std::uint64_t index = s.counters.armed++;
  if (!decide(s.spec, s.rng, index, s.counters.fired)) return Status::ok();
  ++s.counters.fired;
  std::string detail = s.spec.message.empty() ? "" : ": " + s.spec.message;
  return Status::fail(s.spec.code, "fault injected at site '" + site + "' (check #" +
                                       std::to_string(index) + ")" + detail);
}

FaultPlan::SiteCounters FaultPlan::site(const std::string& site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? SiteCounters{} : it->second.counters;
}

std::map<std::string, FaultPlan::SiteCounters> FaultPlan::counters() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, SiteCounters> out;
  for (const auto& [name, s] : sites_) out[name] = s.counters;
  return out;
}

std::uint64_t FaultPlan::expected_fires(const std::string& site,
                                        std::uint64_t checks) const {
  FaultSpec spec;
  {
    std::lock_guard lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return 0;
    spec = it->second.spec;
  }
  Rng rng = site_rng(site);
  std::uint64_t fired = 0;
  for (std::uint64_t i = 0; i < checks; ++i)
    if (decide(spec, rng, i, fired)) ++fired;
  return fired;
}

}  // namespace deflection
