// Byte-buffer helpers: little-endian serialization used by the DXO object
// format, the DX64 instruction encoder, and the attestation/session wire
// protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace deflection {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Appends fixed-width little-endian integers to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void bytes(BytesView v) { out_.insert(out_.end(), v.begin(), v.end()); }
  // Length-prefixed (u32) byte string.
  void blob(BytesView v) {
    u32(static_cast<std::uint32_t>(v.size()));
    bytes(v);
  }
  // Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  Bytes& out_;
};

// Reads fixed-width little-endian integers from a buffer; records overrun
// instead of crashing so the (trusted) DXO parser can reject truncated
// inputs gracefully.
class ByteReader {
 public:
  explicit ByteReader(BytesView in) : in_(in) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? in_.size() - pos_ : 0; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  Bytes bytes(std::size_t n) {
    if (!take(n)) return {};
    Bytes out(in_.begin() + static_cast<std::ptrdiff_t>(pos_ - n),
              in_.begin() + static_cast<std::ptrdiff_t>(pos_));
    return out;
  }
  Bytes blob() {
    std::uint32_t n = u32();
    return bytes(n);
  }
  std::string str() {
    std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(in_.data()) + pos_ - n, n);
  }

 private:
  std::uint64_t le(std::size_t n) {
    if (!take(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(in_[pos_ - n + i]) << (8 * i);
    return v;
  }
  bool take(std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  BytesView in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// In-place little-endian load/store against raw memory (used by the VM and
// the immediate rewriter, which patches imm64 fields inside encoded text).
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // assumes little-endian host; asserted in platform.cpp
}
inline void store_le64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void store_le32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

std::string to_hex(BytesView v);
Bytes from_hex(const std::string& s);

}  // namespace deflection
