// Bounded multi-producer/multi-consumer queue used by the concurrent
// service pool: producers block when the queue is full (backpressure toward
// clients instead of unbounded memory growth), consumers block when it is
// empty. close() wakes everyone; consumers keep draining queued items after
// close so no accepted request is ever dropped.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace deflection {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false (dropping `item`) only if
  // the queue has been closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; false if full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. Returns false only once the
  // queue is closed AND fully drained.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  // Deepest the queue has ever been (pool backlog high-water mark).
  std::size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace deflection
