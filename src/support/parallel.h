// A tiny persistent shard-execution pool for the in-enclave verifier.
//
// verifier::verify at workers > 1 splits its passes into logical shards and
// runs them on real threads. The passes are short (hundreds of
// microseconds), so spawning std::threads per call would cost as much as
// the work; instead a small process-wide pool of sleeping workers is grown
// lazily and reused. Dispatches are serialized: one run_shards() executes
// at a time and later callers queue on the dispatch mutex, so two
// concurrent verifications never oversubscribe the machine — they simply
// run back to back, which is also what the admission layer's single-flight
// gate arranges anyway.
//
// Determinism note: the caller's result must not depend on which thread
// executes which shard. run_shards() guarantees only that every shard index
// in [0, shards) is executed exactly once and that all writes made by shard
// functions happen-before run_shards() returns.
#pragma once

#include <functional>

namespace deflection::parallel {

// Executes fn(shard) for every shard in [0, shards) across the calling
// thread plus up to (shards - 1) pooled worker threads, returning once all
// shards completed. shards <= 1 runs inline. fn must not throw.
void run_shards(int shards, const std::function<void(int)>& fn);

}  // namespace deflection::parallel
