// Deterministic, seeded fault-injection engine for chaos drills.
//
// A FaultPlan is a set of named injection *sites* threaded through the
// serving stack (platform attestation, worker provision/serve, the
// admission-cache lookup, slot binding). Production code calls
// fault_check(plan, site) at each site; with no plan armed that is a single
// null-pointer test, so the seams are free on the fault-free hot path. A
// chaos drill arms sites with a probability and/or an explicit schedule and
// replays the exact same fault sequence from the same seed.
//
// Determinism contract (what tests/chaos_test.cpp asserts):
//  - each site owns a private RNG derived from (plan seed, site name);
//  - every check of an armed site with probability > 0 consumes exactly one
//    draw, under the plan mutex, so the k-th draw always belongs to the
//    k-th check of that site — regardless of which thread performs it;
//  - therefore the number of fires after N checks of a site is a pure
//    function of (seed, site, spec, N), exposed as expected_fires() for
//    test oracles. WHICH request absorbs a given fire still depends on
//    thread interleaving; HOW MANY fire does not.
//
// arm() (re)sets the site's counters and RNG, so a drill can re-arm a site
// mid-run to toggle behaviour and still reason from a clean origin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/result.h"
#include "support/rng.h"

namespace deflection {

// Canonical site names used by the serving stack. Any string is a valid
// site; these are the ones production code checks.
namespace fault_site {
inline constexpr const char* kProvision = "provision";        // ServiceWorker::provision entry
inline constexpr const char* kServe = "serve";                // ServiceWorker::serve entry
inline constexpr const char* kSealInput = "seal_input";       // input sealing before delivery
inline constexpr const char* kEcallRun = "ecall_run";         // before the enclave run
inline constexpr const char* kCacheLookup = "cache_lookup";   // admission verdict lookup
inline constexpr const char* kVerifyFull = "verify_full";     // before a full cold verification
inline constexpr const char* kSlotBind = "slot_bind";         // scheduler (re)bind decision
inline constexpr const char* kQuoteVerify = "quote_verify";   // attestation-service verify
inline constexpr const char* kStreamChunk = "stream_chunk";   // per streamed delivery chunk
inline constexpr const char* kStreamCommit = "stream_commit"; // stream commit entry
inline constexpr const char* kStreamVerifyRegion = "stream_verify_region";  // per pipelined verify round
}  // namespace fault_site

// How one site misbehaves once armed. A check fires when its 0-based index
// (counted from the arm() call) is listed in `schedule`, or with
// `probability` otherwise; `max_fires` caps the total either way.
struct FaultSpec {
  double probability = 0.0;
  std::vector<std::uint64_t> schedule;   // explicit check indices that fire
  std::uint64_t max_fires = ~0ull;
  std::string code = "injected_fault";   // Status code of a fired check
  std::string message;                   // extra detail appended to the site name
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xC4A05) : seed_(seed) {}

  // (Re)arms `site` with `spec`, resetting its counters and RNG. An empty
  // spec (probability 0, no schedule) disarms the site.
  void arm(const std::string& site, FaultSpec spec);

  // Called at an injection site. Returns ok while the site stays quiet and
  // a failure Status (spec.code) when the fault fires. Checks of sites that
  // were never armed still count as armed (coverage accounting) but never
  // fire. Thread-safe.
  Status check(const std::string& site);

  struct SiteCounters {
    std::uint64_t armed = 0;   // checks reached since arm()
    std::uint64_t fired = 0;   // checks that injected a failure
  };
  SiteCounters site(const std::string& site) const;
  std::map<std::string, SiteCounters> counters() const;

  // Replay oracle: how many of the first `checks` checks of `site` fire
  // under its current spec. Matches check() decision-for-decision, so after
  // any run `site(s).fired == expected_fires(s, site(s).armed)` must hold.
  std::uint64_t expected_fires(const std::string& site, std::uint64_t checks) const;

  std::uint64_t seed() const { return seed_; }

 private:
  struct Site {
    FaultSpec spec;
    Rng rng{0};
    SiteCounters counters;
  };

  Rng site_rng(const std::string& site) const;
  // One check decision; mirrored exactly by expected_fires().
  static bool decide(const FaultSpec& spec, Rng& rng, std::uint64_t index,
                     std::uint64_t fired_so_far);

  const std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::string, Site> sites_;
};

using FaultPlanPtr = std::shared_ptr<FaultPlan>;

// Null-safe hot-path helper: no plan, no work.
inline Status fault_check(const FaultPlanPtr& plan, const char* site) {
  return plan == nullptr ? Status::ok() : plan->check(site);
}

}  // namespace deflection
