#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace deflection::parallel {

namespace {

// Worker threads sleep between dispatches; they are created on first use
// and joined when the process-wide instance is destroyed at exit.
class ShardPool {
 public:
  static ShardPool& instance() {
    static ShardPool pool;
    return pool;
  }

  ~ShardPool() {
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void run(int shards, const std::function<void(int)>& fn) {
    std::lock_guard dispatch(dispatch_mutex_);
    ensure_workers(shards - 1);
    {
      std::unique_lock lock(mutex_);
      // Wait out stragglers of the previous dispatch: a worker that woke
      // late may still be inside work() reading the dispatch state below.
      quiesced_.wait(lock, [&] { return active_workers_ == 0; });
      fn_ = &fn;
      next_shard_.store(0, std::memory_order_relaxed);
      shard_count_ = shards;
      remaining_ = shards;
      ++generation_;
    }
    wake_.notify_all();
    work();  // the leader takes shards too
    std::unique_lock lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
  }

 private:
  ShardPool() = default;

  void ensure_workers(int needed) {
    std::lock_guard lock(mutex_);
    while (static_cast<int>(threads_.size()) < needed)
      threads_.emplace_back([this] { worker_main(); });
  }

  // Claims shard indices until the dispatch is exhausted. Shard functions
  // run outside mutex_; completion is signalled once per claimed shard.
  void work() {
    for (;;) {
      int shard = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shard_count_) return;
      (*fn_)(shard);
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_.notify_all();
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (shutdown_) return;
        ++active_workers_;
      }
      work();
      std::lock_guard lock(mutex_);
      if (--active_workers_ == 0) quiesced_.notify_all();
    }
  }

  std::mutex dispatch_mutex_;  // one dispatch at a time

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::condition_variable quiesced_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<int> next_shard_{0};
  int shard_count_ = 0;
  int remaining_ = 0;
  int active_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace

void run_shards(int shards, const std::function<void(int)>& fn) {
  if (shards <= 1) {
    fn(0);
    return;
  }
  ShardPool::instance().run(shards, fn);
}

}  // namespace deflection::parallel
