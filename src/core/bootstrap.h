// The bootstrap enclave — DEFLECTION's trusted code consumer.
//
// Public, measurable, and small: it owns the enclave layout, performs
// RA-TLS-style attested key agreement with the data owner and the code
// provider, accepts the encrypted target binary and user data through the
// restricted ECall surface (policy P0), runs the loader -> verifier ->
// immediate-rewriter pipeline, and finally executes the verified binary
// with OCall stubs that encrypt, pad and budget everything leaving the
// enclave.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "codegen/dxo.h"
#include "crypto/dh.h"
#include "sgx/attestation.h"
#include "support/fault.h"
#include "sgx/platform.h"
#include "verifier/cache.h"
#include "verifier/verify.h"
#include "vm/vm.h"

namespace deflection::core {

enum class Role : std::uint8_t { DataOwner = 0, CodeProvider = 1 };

struct BootstrapConfig {
  verifier::LayoutConfig layout;
  verifier::VerifyConfig verify;     // includes the required policy set
  vm::VmConfig vm;
  sgx::AexPolicy aex;                // platform interrupt schedule (simulated OS)
  std::uint64_t output_pad_block = 1024;  // P0: fixed-size output padding
  std::uint64_t entropy_budget = ~0ull;   // P0: max plaintext bytes out
  // Extension (paper Sec. VII): SGXv2/EDMM platform. After verification and
  // immediate rewriting, the loader drops the target text pages from RWX to
  // RX, so runtime code modification is blocked by hardware in addition to
  // the P4 software DEP.
  bool sgxv2 = false;
  // Extension (paper Sec. VII): on-demand processing-time blurring. When
  // non-zero, the enclave spins until the next multiple of this quantum
  // before reporting completion, so data-dependent running time is not
  // observable at finer granularity (mitigates processing-time covert
  // channels). 0 disables.
  std::uint64_t time_blur_quantum = 0;
  bool allow_debug_print = false;         // P0: deny the debug OCall by default
  // Optional shared admission cache (verifier/cache.h). When set, the
  // consumer reuses verification verdicts for byte-identical binaries
  // admitted under an identical claimed-policy mask and verify config —
  // rewrite_immediates still runs per enclave against its own layout. Not
  // part of the measured image: the cache can only replay verdicts the full
  // verifier produced, never change one, so enabling it does not alter the
  // consumer's admission behaviour.
  std::shared_ptr<verifier::VerificationCache> verify_cache;
  // Optional chaos seam (support/fault.h). Checked at the admission-cache
  // lookup (`cache_lookup` site). Like the cache pointer, this is test/ops
  // plumbing, not behaviour the data owner must audit, so it is not part of
  // the measured image.
  FaultPlanPtr fault_plan;
  std::uint64_t host_base = 0x10000;
  std::uint64_t host_size = 4 * 1024 * 1024;
  std::uint64_t enclave_base = 0x7000'0000'0000ull;
  std::uint64_t rng_seed = 0x0DEF1EC7;
};

struct RunOutcome {
  vm::RunResult result;
  bool policy_violation = false;  // exit through the violation stub
  bool alloc_failure = false;     // exit through the OOM stub
  // P0-sealed output messages for the data owner (encrypt-then-MAC, padded
  // to output_pad_block).
  std::vector<Bytes> sealed_output;
  std::vector<std::int64_t> debug_prints;  // only when allow_debug_print
};

class BootstrapEnclave {
 public:
  // The measured consumer image: a deterministic byte string derived from
  // the consumer version and configuration, standing in for the verifier's
  // code pages. Data owners compute the expected MRENCLAVE from this.
  static Bytes consumer_image(const BootstrapConfig& config);
  static crypto::Digest expected_mrenclave(const BootstrapConfig& config,
                                           std::uint64_t enclave_base_arg = 0);

  BootstrapEnclave(sgx::QuotingEnclave& quoting, const BootstrapConfig& config);
  ~BootstrapEnclave();

  // Worker reset path (used by ServicePool to re-provision a quarantined
  // worker): models destroying the enclave and re-creating it on the same
  // platform. Rebuilds the address space and measured image (same
  // MRENCLAVE) and discards ALL session state — channel keys, the delivered
  // binary, verification results, queued user data and the entropy
  // accounting — so nothing from a failed request can leak into the next.
  // Callers must re-run the channel handshake and re-deliver the binary.
  Status reset();

  const BootstrapConfig& config() const { return config_; }
  crypto::Digest mrenclave() const { return enclave_->mrenclave(); }
  sgx::Enclave& enclave() { return *enclave_; }

  // --- RA-TLS-style channel establishment (one channel per role) ---
  struct ChannelOffer {
    std::uint64_t enclave_dh_public = 0;
    sgx::Quote quote;  // report_data binds H(role || dh_public)
  };
  ChannelOffer open_channel(Role role, std::uint64_t peer_dh_public);
  static crypto::Digest channel_report_data(Role role, std::uint64_t enclave_dh_public);

  // --- Restricted ECall surface (policy P0) ---
  // ecall_receive_binary: sealed DXO from the code provider. On success
  // returns the measurement (SHA-256) of the *decrypted* service binary,
  // which the bootstrap forwards to the data owner for approval.
  Result<crypto::Digest> ecall_receive_binary(BytesView sealed);
  // ecall_receive_userdata: sealed input from the data owner, queued for
  // the service's ocall_recv.
  Status ecall_receive_userdata(BytesView sealed);

  // --- Streaming binary delivery (chunked ECall surface) ---
  // Incremental alternative to ecall_receive_binary for large DXOs: the
  // sealed payload arrives in strictly-ordered chunks, each decrypted and
  // measured as it lands, and — when `pipeline` is set — policy
  // verification runs concurrently over the already-delivered text regions
  // so the verdict lands near-simultaneously with the last chunk.
  //
  // Failure semantics (fail-closed throughout):
  //  - exactly one stream may be active per enclave ("stream_busy");
  //  - chunks must arrive in strict sequence order; a duplicate, skipped or
  //    replayed chunk poisons and scrubs the stream ("stream_out_of_order");
  //  - deadlines are enforced lazily at every chunk/commit and by serving-
  //    layer reapers via ecall_stream_abort ("stream_expired");
  //  - content errors (malformed DXO) are only reported at commit, AFTER
  //    the AEAD tag over the whole payload has verified — a pre-auth parser
  //    verdict would let an attacker distinguish plaintexts ("auth_fail"
  //    always wins over "dxo_malformed");
  //  - scrubbing a stream (abort, expiry, reset, failed commit) joins the
  //    pipeline worker and drops any single-flight admission ticket, so
  //    no partial binary, staged text or verification state survives and
  //    coalesced waiters are released with "admission_abandoned".
  struct StreamOptions {
    // Expected identity of the plaintext DXO. When claimed_digest is
    // non-zero the commit fails unless the delivered bytes hash to it
    // ("stream_digest_mismatch") and carry claimed_mask
    // ("stream_claim_mismatch"); the claim also enables EARLY cache
    // admission — a resident verdict or in-flight leader for the claimed
    // key is discovered at tables-ready instead of at commit.
    std::uint32_t claimed_mask = 0;
    crypto::Digest claimed_digest{};  // all-zero = no claim
    std::uint64_t deadline_ns = 0;      // whole-stream budget; 0 = unbounded
    std::uint64_t idle_timeout_ns = 0;  // max gap between chunks; 0 = unbounded
    bool pipeline = true;  // overlap verification with delivery
  };
  // Implausible totals are rejected at begin: shorter than nonce+tag, or
  // beyond any payload the layout could accept (also catches totals chosen
  // near the u64 wrap).
  static constexpr std::uint64_t kMaxSealedStreamLen = 256ull << 20;
  Status ecall_stream_begin(std::uint64_t total_len, const StreamOptions& options);
  Status ecall_stream_begin(std::uint64_t total_len) {
    return ecall_stream_begin(total_len, StreamOptions{});
  }
  Status ecall_stream_chunk(std::uint64_t seq, BytesView bytes);
  // Commit: verifies total/tag/format/claims, installs the binary, and pays
  // admission (pipelined verdict, cache hit, or serial fallback) before
  // returning the plaintext digest. The stream is consumed either way.
  Result<crypto::Digest> ecall_stream_commit();
  // Abort: scrubs the active stream (idempotent; ok when none is active).
  Status ecall_stream_abort();
  bool stream_active() const;
  // ecall_prepare: pay admission (load -> verify or cache hit -> rewrite)
  // without executing — lets a serving layer front-load the cost at
  // provision time instead of on the first request. Idempotent; ecall_run
  // performs the same admission lazily if this was never called.
  Status ecall_prepare();
  // ecall_run: verify (if not yet verified) and execute the service. A
  // non-zero cost_limit tightens (never loosens) the configured VM budget
  // for this run only — the per-request deadline hook.
  Result<RunOutcome> ecall_run(std::uint64_t cost_limit = 0);

  // --- Sealed service state (SGX sealing, EGETKEY-bound) ---
  // Snapshots the service's data region (globals + used heap) sealed under
  // the platform/MRENCLAVE sealing key; a fresh instance of the SAME
  // bootstrap on the SAME platform can restore it. State persists across
  // enclave restarts without ever touching the host in plaintext.
  Result<Bytes> seal_service_state();
  Status unseal_service_state(BytesView sealed);

  // Debug tracing (forwarded to the VM on the next ecall_run).
  void set_trace_hook(vm::TraceHook hook) { trace_ = std::move(hook); }

  // Introspection for tests/benches.
  const verifier::VerifyReport* verify_report() const {
    return verified_ ? &report_ : nullptr;
  }
  const verifier::LoadedBinary* loaded() const {
    return loaded_.has_value() ? &*loaded_ : nullptr;
  }

 private:
  // (Re)creates the address space, enclave and measured consumer image from
  // config_ — the shared back half of construction and reset().
  Status rebuild();

  // Admission: load the delivered DXO, obtain a verification verdict (full
  // verifier, or the shared cache when it holds one for the same digest +
  // claimed policies + config), and patch the immediates. The shared back
  // half of ecall_prepare() and ecall_run().
  Status ensure_verified();

  // --- Streaming delivery internals ---
  struct StreamState;
  // Shared back half of ecall_stream_commit (admit=true) and the one-shot
  // ecall_receive_binary wrapper (admit=false: delivery only, admission
  // stays lazy exactly as the legacy surface promised).
  Result<crypto::Digest> stream_commit_internal(bool admit);
  // At tables-ready: provisional resolve, relocation staging, early cache
  // poll, and pipeline start. stream_mutex_ held.
  void stream_tables_ready_locked();
  // Applies staged relocations whose 8-byte windows are fully delivered and
  // publishes the pipeline watermark. stream_mutex_ held.
  void stream_apply_relocs_locked();
  // Commit-side admission: load, harvest/fallback verification, cache
  // resolution, immediate rewrite, SGXv2 flip.
  Status stream_admit(const crypto::Digest& digest, StreamState& st);

  Result<std::uint64_t> handle_ocall(std::uint8_t num, std::uint64_t rdi,
                                     std::uint64_t rsi, std::uint64_t rdx,
                                     RunOutcome& outcome);

  BootstrapConfig config_;
  Rng rng_;
  std::unique_ptr<sgx::AddressSpace> space_;
  std::unique_ptr<sgx::Enclave> enclave_;
  verifier::EnclaveLayout layout_;
  sgx::Quote base_quote_;
  sgx::QuotingEnclave& quoting_;

  std::optional<crypto::Key256> owner_key_;
  std::optional<crypto::Key256> provider_key_;

  std::optional<codegen::Dxo> dxo_;
  std::optional<crypto::Digest> binary_digest_;  // SHA-256 of the plaintext DXO
  std::optional<verifier::LoadedBinary> loaded_;
  verifier::VerifyReport report_;
  // Per-enclave trace cache for the block engine, warm across ecall_runs of
  // the same loaded binary (each run constructs a fresh Vm; short serving
  // requests would otherwise predecode every block on every request). The
  // cache self-invalidates via the address space's text-write/permission
  // generations — replacing the binary goes through copy_in, which bumps
  // the text generation — and is cleared on delivery/reset anyway to drop
  // the old binary's blocks promptly.
  vm::BlockCache block_cache_;
  bool verified_ = false;

  std::deque<Bytes> inbox_;            // decrypted user inputs
  std::uint64_t entropy_spent_ = 0;    // plaintext bytes sent out so far
  vm::TraceHook trace_;

  // Active delivery stream (at most one). stream_mutex_ serializes the
  // chunk path against abort/reaper scrubs; commit takes ownership of the
  // state under the mutex and finishes outside it, so an abort never
  // blocks behind a committing (possibly admission-waiting) stream.
  mutable std::mutex stream_mutex_;
  std::unique_ptr<StreamState> stream_;
};

}  // namespace deflection::core
