#include "core/pool.h"

#include <optional>

namespace deflection::core {

Result<std::unique_ptr<ServicePool>> ServicePool::create(const codegen::Dxo& service,
                                                         const BootstrapConfig& config,
                                                         int workers,
                                                         const PoolOptions& options) {
  if (workers < 1)
    return Result<std::unique_ptr<ServicePool>>::fail("pool_size", "need >= 1 worker");
  std::unique_ptr<ServicePool> pool(new ServicePool(service, options));
  if (options.share_verification_cache)
    pool->cache_ = std::make_shared<verifier::VerificationCache>();
  BootstrapConfig worker_config = config;
  worker_config.verify_cache = pool->cache_;
  worker_config.fault_plan = options.fault_plan;
  if (options.verify_workers > 1) worker_config.verify.workers = options.verify_workers;
  pool->as_.set_fault_plan(options.fault_plan);
  for (int i = 0; i < workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->unit = std::make_unique<ServiceWorker>(pool->as_, worker_config, i,
                                              "pool-platform-",
                                              "worker " + std::to_string(i));
    if (auto s = w->unit->provision(service, /*is_reprovision=*/false); !s.is_ok())
      return Result<std::unique_ptr<ServicePool>>::fail(s.code(),
                                                        w->unit->tag(s.message()));
    pool->workers_.push_back(std::move(w));
  }
  pool->stats_.workers.resize(static_cast<std::size_t>(workers));
  // Threads start only after every worker is provisioned, so worker_main
  // never observes a half-built pool.
  for (auto& w : pool->workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([pool_ptr = pool.get(), raw] { pool_ptr->worker_main(*raw); });
  }
  return pool;
}

void ServicePool::stop() {
  queue_.close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

ServicePool::~ServicePool() { stop(); }

void ServicePool::worker_main(Worker& w) {
  const std::size_t idx = static_cast<std::size_t>(w.unit->index());
  Request req;
  while (queue_.pop(req)) {
    auto picked_up = std::chrono::steady_clock::now();
    std::optional<Response> response;
    if (w.health == WorkerHealth::Quarantined) {
      // Re-provision before touching another request: enclave reset, fresh
      // handshake, binary re-upload (admission replayed from the shared
      // cache when enabled, fully re-verified otherwise).
      Status restored = w.unit->reprovision(service_);
      if (restored.is_ok()) {
        w.health = WorkerHealth::Healthy;
        std::lock_guard lock(stats_mutex_);
        ++stats_.retries;
        ++stats_.workers[idx].reprovisions;
        stats_.workers[idx].health = WorkerHealth::Healthy;
      } else {
        // Still poisoned: answer with the provisioning error and keep the
        // quarantine so the next request tries again.
        std::lock_guard lock(stats_mutex_);
        ++stats_.reprovision_failures;
        ++stats_.requests_failed;
        ++stats_.workers[idx].failed;
        response = Response::fail(
            restored.code(),
            w.unit->tag("re-provision failed: " + restored.message()));
      }
    }
    if (!response.has_value()) {
      ServiceWorker::ServeMetrics metrics;
      response = w.unit->serve(req.payload, &metrics, options_.cost_budget);
      std::lock_guard lock(stats_mutex_);
      stats_.total_cost += metrics.cost;
      stats_.workers[idx].cost += metrics.cost;
      if (response->is_ok()) {
        ++stats_.requests_served;
        ++stats_.workers[idx].served;
      } else {
        if (response->code() == "deadline_exceeded") ++stats_.deadline_exceeded;
        // Any error path may leave the worker holding stale request state
        // (e.g. sealed userdata queued but never consumed), so it is
        // quarantined rather than silently reused.
        ++stats_.requests_failed;
        ++stats_.workers[idx].failed;
        ++stats_.workers[idx].quarantines;
        if (response->code() == "policy_violation") ++stats_.violations;
        w.health = WorkerHealth::Quarantined;
        stats_.workers[idx].health = WorkerHealth::Quarantined;
      }
    }
    if (options_.response_blur.count() > 0) {
      // Pad the observable service time to the blur quantum (Sec. VII:
      // on-demand aligning/blurring of processing time). EVERY response —
      // success, serve error, or re-provision failure — leaves through this
      // blur: an error path that fulfilled its promise early would return
      // at an unblurred, data-dependent time.
      auto blur = options_.response_blur;
      auto elapsed = std::chrono::steady_clock::now() - picked_up;
      auto quanta = elapsed / blur + 1;
      std::this_thread::sleep_until(picked_up + quanta * blur);
    }
    req.promise.set_value(std::move(*response));
  }
}

std::future<ServicePool::Response> ServicePool::submit_async(BytesView request) {
  Request req;
  req.payload = Bytes(request.begin(), request.end());
  std::future<Response> future = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    std::promise<Response> dead;
    dead.set_value(Response::fail("stopped", "service pool is stopped"));
    return dead.get_future();
  }
  return future;
}

ServicePool::Response ServicePool::submit(BytesView request) {
  return submit_async(request).get();
}

std::uint64_t ServicePool::total_cost() const {
  std::lock_guard lock(stats_mutex_);
  return stats_.total_cost;
}

PoolStats ServicePool::stats() const {
  std::lock_guard lock(stats_mutex_);
  PoolStats snapshot = stats_;
  snapshot.queue_high_water = queue_.high_water();
  if (cache_) snapshot.cache = cache_->stats();
  return snapshot;
}

}  // namespace deflection::core
