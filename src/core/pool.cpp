#include "core/pool.h"

#include <optional>

namespace deflection::core {

namespace {

std::string worker_tag(int index, const std::string& message) {
  return "worker " + std::to_string(index) + ": " + message;
}

}  // namespace

Result<std::unique_ptr<ServicePool>> ServicePool::create(const codegen::Dxo& service,
                                                         const BootstrapConfig& config,
                                                         int workers,
                                                         const PoolOptions& options) {
  if (workers < 1)
    return Result<std::unique_ptr<ServicePool>>::fail("pool_size", "need >= 1 worker");
  std::unique_ptr<ServicePool> pool(new ServicePool(service, options));
  if (options.share_verification_cache)
    pool->cache_ = std::make_shared<verifier::VerificationCache>();
  crypto::Digest expected = BootstrapEnclave::expected_mrenclave(config);
  for (int i = 0; i < workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    std::string platform = "pool-platform-" + std::to_string(i);
    w->quoting = std::make_unique<sgx::QuotingEnclave>(
        pool->as_.provision(platform, 1000 + static_cast<std::uint64_t>(i)));
    BootstrapConfig worker_config = config;
    worker_config.rng_seed = config.rng_seed + static_cast<std::uint64_t>(i) + 1;
    worker_config.verify_cache = pool->cache_;
    w->enclave = std::make_unique<BootstrapEnclave>(*w->quoting, worker_config);
    w->owner = std::make_unique<DataOwner>(pool->as_, expected,
                                           0xDA7A00 + static_cast<std::uint64_t>(i));
    w->provider = std::make_unique<CodeProvider>(pool->as_, expected,
                                                 0xC0DE00 + static_cast<std::uint64_t>(i));
    if (auto s = pool->provision(*w, /*is_reprovision=*/false); !s.is_ok())
      return Result<std::unique_ptr<ServicePool>>::fail(s.code(),
                                                        worker_tag(i, s.message()));
    pool->workers_.push_back(std::move(w));
  }
  pool->stats_.workers.resize(static_cast<std::size_t>(workers));
  // Threads start only after every worker is provisioned, so worker_main
  // never observes a half-built pool.
  for (auto& w : pool->workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([pool_ptr = pool.get(), raw] { pool_ptr->worker_main(*raw); });
  }
  return pool;
}

ServicePool::~ServicePool() {
  queue_.close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

Status ServicePool::provision(Worker& w, bool is_reprovision) {
  if (options_.provision_fault) {
    if (auto s = options_.provision_fault(w.index, is_reprovision); !s.is_ok()) return s;
  }
  auto owner_offer = w.enclave->open_channel(Role::DataOwner, w.owner->dh_public());
  if (auto s = w.owner->accept(owner_offer); !s.is_ok()) return s;
  auto provider_offer =
      w.enclave->open_channel(Role::CodeProvider, w.provider->dh_public());
  if (auto s = w.provider->accept(provider_offer); !s.is_ok()) return s;
  auto digest = w.enclave->ecall_receive_binary(w.provider->seal_binary(service_));
  if (!digest.is_ok()) return digest.status();
  // Pay admission now (full verify on the first worker, a cache hit + the
  // per-worker immediate rewrite afterwards) so the worker's first request
  // doesn't. A non-compliant service is deliberately NOT a provisioning
  // failure: ecall_run re-runs admission, so the verifier's error surfaces
  // on every request, attributed to the worker that served it.
  (void)w.enclave->ecall_prepare();
  return Status::ok();
}

ServicePool::Response ServicePool::serve(Worker& w, const Bytes& payload) {
  auto fail = [&](const std::string& code, const std::string& message) {
    return Response::fail(code, worker_tag(w.index, message));
  };
  if (auto s = w.enclave->ecall_receive_userdata(w.owner->seal_input(BytesView(payload)));
      !s.is_ok())
    return fail(s.code(), s.message());
  auto outcome = w.enclave->ecall_run();
  if (!outcome.is_ok()) return fail(outcome.code(), outcome.message());
  {
    std::lock_guard lock(stats_mutex_);
    stats_.total_cost += outcome.value().result.cost;
    stats_.workers[static_cast<std::size_t>(w.index)].cost +=
        outcome.value().result.cost;
  }
  if (outcome.value().policy_violation)
    return fail("policy_violation", "service aborted through the violation stub");
  std::vector<Bytes> outputs;
  for (const auto& sealed : outcome.value().sealed_output) {
    auto plain = w.owner->open_output(BytesView(sealed));
    if (!plain.is_ok()) return fail(plain.code(), plain.message());
    outputs.push_back(plain.take());
  }
  return outputs;
}

void ServicePool::worker_main(Worker& w) {
  const std::size_t idx = static_cast<std::size_t>(w.index);
  Request req;
  while (queue_.pop(req)) {
    auto picked_up = std::chrono::steady_clock::now();
    std::optional<Response> response;
    if (w.health == WorkerHealth::Quarantined) {
      // Re-provision before touching another request: enclave reset, fresh
      // handshake, binary re-upload (admission replayed from the shared
      // cache when enabled, fully re-verified otherwise).
      Status reset = w.enclave->reset();
      Status restored = reset.is_ok() ? provision(w, /*is_reprovision=*/true) : reset;
      if (restored.is_ok()) {
        w.health = WorkerHealth::Healthy;
        std::lock_guard lock(stats_mutex_);
        ++stats_.retries;
        stats_.workers[idx].health = WorkerHealth::Healthy;
      } else {
        // Still poisoned: answer with the provisioning error and keep the
        // quarantine so the next request tries again.
        std::lock_guard lock(stats_mutex_);
        ++stats_.requests_failed;
        ++stats_.workers[idx].failed;
        response = Response::fail(
            restored.code(),
            worker_tag(w.index, "re-provision failed: " + restored.message()));
      }
    }
    if (!response.has_value()) {
      response = serve(w, req.payload);
      std::lock_guard lock(stats_mutex_);
      if (response->is_ok()) {
        ++stats_.requests_served;
        ++stats_.workers[idx].served;
      } else {
        // Any error path may leave the worker holding stale request state
        // (e.g. sealed userdata queued but never consumed), so it is
        // quarantined rather than silently reused.
        ++stats_.requests_failed;
        ++stats_.workers[idx].failed;
        ++stats_.workers[idx].quarantines;
        if (response->code() == "policy_violation") ++stats_.violations;
        w.health = WorkerHealth::Quarantined;
        stats_.workers[idx].health = WorkerHealth::Quarantined;
      }
    }
    if (options_.response_blur.count() > 0) {
      // Pad the observable service time to the blur quantum (Sec. VII:
      // on-demand aligning/blurring of processing time). EVERY response —
      // success, serve error, or re-provision failure — leaves through this
      // blur: an error path that fulfilled its promise early would return
      // at an unblurred, data-dependent time.
      auto blur = options_.response_blur;
      auto elapsed = std::chrono::steady_clock::now() - picked_up;
      auto quanta = elapsed / blur + 1;
      std::this_thread::sleep_until(picked_up + quanta * blur);
    }
    req.promise.set_value(std::move(*response));
  }
}

std::future<ServicePool::Response> ServicePool::submit_async(BytesView request) {
  Request req;
  req.payload = Bytes(request.begin(), request.end());
  std::future<Response> future = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    std::promise<Response> dead;
    dead.set_value(Response::fail("pool_closed", "service pool is shutting down"));
    return dead.get_future();
  }
  return future;
}

ServicePool::Response ServicePool::submit(BytesView request) {
  return submit_async(request).get();
}

std::uint64_t ServicePool::total_cost() const {
  std::lock_guard lock(stats_mutex_);
  return stats_.total_cost;
}

PoolStats ServicePool::stats() const {
  std::lock_guard lock(stats_mutex_);
  PoolStats snapshot = stats_;
  snapshot.queue_high_water = queue_.high_water();
  if (cache_) snapshot.cache = cache_->stats();
  return snapshot;
}

}  // namespace deflection::core
