#include "core/pool.h"

namespace deflection::core {

Result<std::unique_ptr<ServicePool>> ServicePool::create(const codegen::Dxo& service,
                                                         const BootstrapConfig& config,
                                                         int workers) {
  if (workers < 1)
    return Result<std::unique_ptr<ServicePool>>::fail("pool_size", "need >= 1 worker");
  auto pool = std::make_unique<ServicePool>();
  crypto::Digest expected = BootstrapEnclave::expected_mrenclave(config);
  for (int i = 0; i < workers; ++i) {
    Worker w;
    std::string platform = "pool-platform-" + std::to_string(i);
    w.quoting = std::make_unique<sgx::QuotingEnclave>(
        pool->as_.provision(platform, 1000 + static_cast<std::uint64_t>(i)));
    BootstrapConfig worker_config = config;
    worker_config.rng_seed = config.rng_seed + static_cast<std::uint64_t>(i) + 1;
    w.enclave = std::make_unique<BootstrapEnclave>(*w.quoting, worker_config);
    w.owner = std::make_unique<DataOwner>(pool->as_, expected,
                                          0xDA7A00 + static_cast<std::uint64_t>(i));
    w.provider = std::make_unique<CodeProvider>(pool->as_, expected,
                                                0xC0DE00 + static_cast<std::uint64_t>(i));
    auto owner_offer = w.enclave->open_channel(Role::DataOwner, w.owner->dh_public());
    if (auto s = w.owner->accept(owner_offer); !s.is_ok()) return s.error();
    auto provider_offer =
        w.enclave->open_channel(Role::CodeProvider, w.provider->dh_public());
    if (auto s = w.provider->accept(provider_offer); !s.is_ok()) return s.error();
    auto digest = w.enclave->ecall_receive_binary(w.provider->seal_binary(service));
    if (!digest.is_ok()) return digest.error();
    pool->workers_.push_back(std::move(w));
  }
  return pool;
}

Result<std::vector<Bytes>> ServicePool::submit(BytesView request) {
  Worker& w = workers_[next_];
  next_ = (next_ + 1) % workers_.size();
  if (auto s = w.enclave->ecall_receive_userdata(w.owner->seal_input(request));
      !s.is_ok())
    return s.error();
  auto outcome = w.enclave->ecall_run();
  if (!outcome.is_ok()) return outcome.error();
  total_cost_ += outcome.value().result.cost;
  if (outcome.value().policy_violation)
    return Result<std::vector<Bytes>>::fail("policy_violation",
                                            "worker aborted through the violation stub");
  std::vector<Bytes> outputs;
  for (const auto& sealed : outcome.value().sealed_output) {
    auto plain = w.owner->open_output(BytesView(sealed));
    if (!plain.is_ok()) return plain.error();
    outputs.push_back(plain.take());
  }
  return outputs;
}

}  // namespace deflection::core
