// One isolated serving unit, shared by every serving layer.
//
// A ServiceWorker bundles what the paper's deployment needs per verified
// service instance: a (simulated) platform quoting enclave, the bootstrap
// enclave itself, and the two remote-party actors (data owner, code
// provider) that drive its attested channels. The provision cycle — channel
// handshakes, sealed binary upload, eager admission — and the serve cycle —
// sealed input, ecall_run, opened outputs — used to live inside
// ServicePool; they are extracted here so the legacy pool's workers and the
// multi-tenant registry's slots (src/registry/) run one code path,
// including the quarantine re-provision + admission-cache logic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "support/fault.h"

namespace deflection::core {

// Serving-unit health, shared by the pool's workers and the registry's
// slots: a unit whose request errored is Quarantined and must be
// re-provisioned before it serves again.
enum class WorkerHealth : std::uint8_t { Healthy = 0, Quarantined = 1 };

class ServiceWorker {
 public:
  using Response = Result<std::vector<Bytes>>;

  // Side-band serve measurements the caller folds into its own stats.
  struct ServeMetrics {
    std::uint64_t cost = 0;   // VM cost of the run (0 when the run failed)
    bool violation = false;   // exit through the violation stub
  };

  // Builds the platform + enclave + remote parties; provisions nothing.
  // `index` derandomises per-worker seeds (platform, DH, enclave RNG) so
  // distinct workers never share key material; `platform_prefix` names the
  // simulated platform ("pool-platform-", "slot-platform-", ...); `label`
  // prefixes every error this worker reports ("worker 3", "slot 0", ...).
  ServiceWorker(sgx::AttestationService& as, const BootstrapConfig& config,
                int index, const std::string& platform_prefix,
                const std::string& label);

  int index() const { return index_; }
  const std::string& label() const { return label_; }
  BootstrapEnclave& enclave() { return *enclave_; }
  // True once a provision cycle has completed (cleared by reset()).
  bool provisioned() const { return provisioned_; }

  std::string tag(const std::string& message) const { return label_ + ": " + message; }

  // Fresh channel handshake + sealed binary upload + eager admission (full
  // verify on a cache miss, replayed verdict on a hit). With
  // `strict_admission` an admission failure fails the provision — the
  // registry's register-time gate; without it a non-compliant service is
  // deliberately NOT a provisioning failure: ecall_run re-runs admission,
  // so the verifier's error surfaces on every request, attributed to the
  // worker that served it. Chaos seam: checks the `provision` site of
  // the FaultPlan installed via BootstrapConfig::fault_plan (if any).
  Status provision(const codegen::Dxo& service, bool is_reprovision,
                   bool strict_admission = false);
  // Quarantine recovery / tenant rebind: enclave reset (all session state
  // discarded) followed by a full provision cycle.
  Status reprovision(const codegen::Dxo& service, bool strict_admission = false);
  Status reset();

  // One request: sealed input -> ecall_run -> opened outputs. Every error
  // is tagged with this worker's label; callers must treat any error as
  // poisoning the enclave (quarantine + reprovision before reuse). A
  // non-zero cost_budget tightens the VM budget for this run; a run cut
  // off by it fails with code "deadline_exceeded". Chaos seams: `serve`,
  // `seal_input` and `ecall_run` sites.
  Response serve(const Bytes& payload, ServeMetrics* metrics = nullptr,
                 std::uint64_t cost_budget = 0);

  // --- Streaming provision cycle ---
  // Chunked alternative to provision() for large binaries, always strict:
  // admission is paid inside the enclave's stream commit. begin runs the
  // channel handshakes, seals the service and opens a chunked delivery
  // that claims (digest, policy mask) up front — enabling the enclave's
  // early cache coalescing and pipelined verification — and returns the
  // claimed digest. The caller paces delivery with feed (up to max_bytes
  // of sealed payload per call; returns the bytes still undelivered) and
  // completes with commit. Any enclave-side failure scrubs both ends of
  // the stream; the worker must then be reset before reuse, like any
  // failed provision.
  Result<crypto::Digest> provision_stream_begin(const codegen::Dxo& service,
                                                std::uint64_t deadline_ns,
                                                std::uint64_t idle_timeout_ns,
                                                bool pipeline = true);
  Result<std::uint64_t> provision_stream_feed(std::uint64_t max_bytes);
  Result<crypto::Digest> provision_stream_commit();
  Status provision_stream_abort();  // idempotent
  bool stream_open() const { return stream_open_; }
  std::uint64_t stream_remaining() const { return stream_sealed_.size() - stream_off_; }

 private:
  int index_;
  std::string label_;
  FaultPlanPtr fault_plan_;
  std::unique_ptr<sgx::QuotingEnclave> quoting_;
  std::unique_ptr<BootstrapEnclave> enclave_;
  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<CodeProvider> provider_;
  bool provisioned_ = false;

  // In-flight streaming provision (host-side pacing state; the enclave
  // holds the trusted half).
  Bytes stream_sealed_;
  std::uint64_t stream_off_ = 0;
  std::uint64_t stream_seq_ = 0;
  bool stream_open_ = false;
};

}  // namespace deflection::core
