#include "core/protocol.h"

#include <cstring>

namespace deflection::core {

Status RemoteParty::accept(const BootstrapEnclave::ChannelOffer& offer) {
  sgx::AttestationService::Report report = as_.verify(offer.quote);
  if (!report.valid)
    return Status::fail("attest_fail", "attestation service rejected quote: " + report.reason);
  if (!crypto::digest_equal(report.mrenclave, expected_))
    return Status::fail("mrenclave_mismatch",
                        "bootstrap enclave measurement does not match the audited source");
  crypto::Digest expect_rd =
      BootstrapEnclave::channel_report_data(role_, offer.enclave_dh_public);
  if (!crypto::digest_equal(report.report_data, expect_rd))
    return Status::fail("binding_mismatch", "quote does not bind the offered DH key");
  key_ = crypto::dh_shared_key(pair_.secret, offer.enclave_dh_public);
  return Status::ok();
}

Bytes RemoteParty::seal(BytesView plaintext) {
  crypto::Nonce96 nonce{};
  std::uint64_t n0 = rng_.next(), n1 = rng_.next();
  std::memcpy(nonce.data(), &n0, 8);
  std::memcpy(nonce.data() + 8, &n1, 4);
  return crypto::aead_seal(*key_, nonce, plaintext);
}

Result<Bytes> DataOwner::open_output(BytesView sealed) const {
  auto frame = open(sealed);
  if (!frame.has_value())
    return Result<Bytes>::fail("auth_fail", "output frame failed authentication");
  if (frame->size() < 8)
    return Result<Bytes>::fail("frame_malformed", "output frame too short");
  ByteReader r{BytesView(*frame)};
  std::uint64_t len = r.u64();
  if (len > frame->size() - 8)
    return Result<Bytes>::fail("frame_malformed", "output frame length field invalid");
  return Bytes(frame->begin() + 8, frame->begin() + 8 + static_cast<std::ptrdiff_t>(len));
}

}  // namespace deflection::core
