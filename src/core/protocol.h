// Protocol actors: the untrusted code producer/provider and the remote data
// owner (paper Fig. 1). Both parties attest the bootstrap enclave against
// the measurement they computed themselves from its published source, then
// run DH key agreement over the quote-bound channel.
#pragma once

#include "codegen/compile.h"
#include "core/bootstrap.h"

namespace deflection::core {

// The code producer: the provider's untrusted compiler toolchain.
class CodeProducer {
 public:
  static Result<codegen::CompileOutput> build(
      const std::string& minic_source, PolicySet policies,
      const codegen::InstrumentOptions* options = nullptr) {
    return codegen::compile(minic_source, policies, options);
  }
};

// Client-side attested-channel logic shared by both remote parties.
class RemoteParty {
 public:
  RemoteParty(const sgx::AttestationService& as, crypto::Digest expected_mrenclave,
              Role role, std::uint64_t seed)
      : as_(as), expected_(expected_mrenclave), role_(role), rng_(seed) {
    pair_ = crypto::dh_generate(rng_);
  }

  std::uint64_t dh_public() const { return pair_.public_value; }

  // Verifies the enclave's quote (via the attestation service) and the
  // binding of the enclave's DH key, then derives the session key.
  Status accept(const BootstrapEnclave::ChannelOffer& offer);

  bool has_session() const { return key_.has_value(); }
  const crypto::Key256& session_key() const { return *key_; }

  Bytes seal(BytesView plaintext);
  std::optional<Bytes> open(BytesView sealed) const {
    if (!key_.has_value()) return std::nullopt;
    return crypto::aead_open(*key_, sealed);
  }

 private:
  const sgx::AttestationService& as_;
  crypto::Digest expected_;
  Role role_;
  Rng rng_;
  crypto::DhKeyPair pair_{};
  std::optional<crypto::Key256> key_;
};

// The code provider: owns the proprietary service binary; delivers it
// encrypted so the platform never sees it in the clear.
class CodeProvider : public RemoteParty {
 public:
  CodeProvider(const sgx::AttestationService& as, crypto::Digest expected_mrenclave,
               std::uint64_t seed = 0xC0DE)
      : RemoteParty(as, expected_mrenclave, Role::CodeProvider, seed) {}

  Bytes seal_binary(const codegen::Dxo& dxo) { return seal(dxo.serialize()); }

  // Streaming delivery claim: the sealed payload plus the identity the
  // stream asserts at ecall_stream_begin — plaintext digest and policy
  // mask — so the enclave can coalesce cache admission (and start its
  // pipelined verifier under the claimed key) before the last chunk
  // arrives. The claim is re-checked by the enclave at commit against the
  // decrypted bytes; a lying provider gets "stream_digest_mismatch".
  struct StreamedBinary {
    Bytes sealed;
    crypto::Digest digest{};       // SHA-256 of the plaintext DXO bytes
    std::uint32_t policy_mask = 0; // the binary's claimed PolicySet
  };
  StreamedBinary seal_binary_stream(const codegen::Dxo& dxo) {
    Bytes plain = dxo.serialize();
    StreamedBinary out;
    out.digest = crypto::Sha256::hash(BytesView(plain));
    out.policy_mask = dxo.policies.mask();
    out.sealed = seal(BytesView(plain));
    return out;
  }
};

// The data owner: approves the (hash of the) service code reported by the
// attested bootstrap enclave, then feeds sealed inputs and opens sealed,
// padded outputs.
class DataOwner : public RemoteParty {
 public:
  DataOwner(const sgx::AttestationService& as, crypto::Digest expected_mrenclave,
            std::uint64_t seed = 0xDA7A)
      : RemoteParty(as, expected_mrenclave, Role::DataOwner, seed) {}

  Bytes seal_input(BytesView data) { return seal(data); }

  // Unwraps one padded output frame: [u64 true_len][payload][zero pad].
  Result<Bytes> open_output(BytesView sealed) const;
};

}  // namespace deflection::core
