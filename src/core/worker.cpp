#include "core/worker.h"

#include <algorithm>

namespace deflection::core {

ServiceWorker::ServiceWorker(sgx::AttestationService& as, const BootstrapConfig& config,
                             int index, const std::string& platform_prefix,
                             const std::string& label)
    : index_(index), label_(label), fault_plan_(config.fault_plan) {
  quoting_ = std::make_unique<sgx::QuotingEnclave>(
      as.provision(platform_prefix + std::to_string(index),
                   1000 + static_cast<std::uint64_t>(index)));
  BootstrapConfig worker_config = config;
  worker_config.rng_seed = config.rng_seed + static_cast<std::uint64_t>(index) + 1;
  enclave_ = std::make_unique<BootstrapEnclave>(*quoting_, worker_config);
  crypto::Digest expected = BootstrapEnclave::expected_mrenclave(worker_config);
  owner_ = std::make_unique<DataOwner>(as, expected,
                                       0xDA7A00 + static_cast<std::uint64_t>(index));
  provider_ = std::make_unique<CodeProvider>(as, expected,
                                             0xC0DE00 + static_cast<std::uint64_t>(index));
}

Status ServiceWorker::provision(const codegen::Dxo& service, bool is_reprovision,
                                bool strict_admission) {
  (void)is_reprovision;
  if (auto s = fault_check(fault_plan_, fault_site::kProvision); !s.is_ok()) return s;
  auto owner_offer = enclave_->open_channel(Role::DataOwner, owner_->dh_public());
  if (auto s = owner_->accept(owner_offer); !s.is_ok()) return s;
  auto provider_offer =
      enclave_->open_channel(Role::CodeProvider, provider_->dh_public());
  if (auto s = provider_->accept(provider_offer); !s.is_ok()) return s;
  auto digest = enclave_->ecall_receive_binary(provider_->seal_binary(service));
  if (!digest.is_ok()) return digest.status();
  // Pay admission now (full verify on a cache miss, replayed verdict + the
  // per-worker immediate rewrite on a hit) so the worker's first request
  // doesn't.
  Status admitted = enclave_->ecall_prepare();
  if (strict_admission && !admitted.is_ok()) return admitted;
  provisioned_ = true;
  return Status::ok();
}

Status ServiceWorker::reprovision(const codegen::Dxo& service, bool strict_admission) {
  if (auto s = reset(); !s.is_ok()) return s;
  return provision(service, /*is_reprovision=*/true, strict_admission);
}

Status ServiceWorker::reset() {
  provisioned_ = false;
  stream_sealed_.clear();
  stream_off_ = stream_seq_ = 0;
  stream_open_ = false;
  return enclave_->reset();  // also scrubs any in-flight enclave stream
}

Result<crypto::Digest> ServiceWorker::provision_stream_begin(
    const codegen::Dxo& service, std::uint64_t deadline_ns,
    std::uint64_t idle_timeout_ns, bool pipeline) {
  using R = Result<crypto::Digest>;
  if (auto s = fault_check(fault_plan_, fault_site::kProvision); !s.is_ok())
    return R::fail(s.code(), tag(s.message()));
  if (stream_open_)
    return R::fail("stream_busy", tag("a provisioning stream is already open"));
  auto owner_offer = enclave_->open_channel(Role::DataOwner, owner_->dh_public());
  if (auto s = owner_->accept(owner_offer); !s.is_ok())
    return R::fail(s.code(), tag(s.message()));
  auto provider_offer =
      enclave_->open_channel(Role::CodeProvider, provider_->dh_public());
  if (auto s = provider_->accept(provider_offer); !s.is_ok())
    return R::fail(s.code(), tag(s.message()));
  auto claimed = provider_->seal_binary_stream(service);
  BootstrapEnclave::StreamOptions options;
  options.claimed_mask = claimed.policy_mask;
  options.claimed_digest = claimed.digest;
  options.deadline_ns = deadline_ns;
  options.idle_timeout_ns = idle_timeout_ns;
  options.pipeline = pipeline;
  if (auto s = enclave_->ecall_stream_begin(claimed.sealed.size(), options);
      !s.is_ok())
    return R::fail(s.code(), tag(s.message()));
  stream_sealed_ = std::move(claimed.sealed);
  stream_off_ = stream_seq_ = 0;
  stream_open_ = true;
  return claimed.digest;
}

Result<std::uint64_t> ServiceWorker::provision_stream_feed(std::uint64_t max_bytes) {
  using R = Result<std::uint64_t>;
  if (!stream_open_)
    return R::fail("stream_inactive", tag("no provisioning stream open"));
  std::uint64_t n = std::min<std::uint64_t>(max_bytes, stream_remaining());
  if (n > 0) {
    BytesView chunk(stream_sealed_.data() + stream_off_, n);
    if (auto s = enclave_->ecall_stream_chunk(stream_seq_, chunk); !s.is_ok()) {
      // The enclave scrubbed its end; drop ours so the failure is terminal.
      stream_sealed_.clear();
      stream_off_ = stream_seq_ = 0;
      stream_open_ = false;
      return R::fail(s.code(), tag(s.message()));
    }
    stream_off_ += n;
    ++stream_seq_;
  }
  return stream_remaining();
}

Result<crypto::Digest> ServiceWorker::provision_stream_commit() {
  using R = Result<crypto::Digest>;
  if (!stream_open_)
    return R::fail("stream_inactive", tag("no provisioning stream open"));
  auto digest = enclave_->ecall_stream_commit();
  stream_sealed_.clear();
  stream_off_ = stream_seq_ = 0;
  stream_open_ = false;
  if (!digest.is_ok()) return R::fail(digest.code(), tag(digest.message()));
  provisioned_ = true;
  return digest;
}

Status ServiceWorker::provision_stream_abort() {
  stream_sealed_.clear();
  stream_off_ = stream_seq_ = 0;
  stream_open_ = false;
  return enclave_->ecall_stream_abort();
}

ServiceWorker::Response ServiceWorker::serve(const Bytes& payload, ServeMetrics* metrics,
                                             std::uint64_t cost_budget) {
  auto fail = [&](const std::string& code, const std::string& message) {
    return Response::fail(code, tag(message));
  };
  if (auto s = fault_check(fault_plan_, fault_site::kServe); !s.is_ok())
    return fail(s.code(), s.message());
  if (auto s = fault_check(fault_plan_, fault_site::kSealInput); !s.is_ok())
    return fail(s.code(), s.message());
  if (auto s = enclave_->ecall_receive_userdata(owner_->seal_input(BytesView(payload)));
      !s.is_ok())
    return fail(s.code(), s.message());
  if (auto s = fault_check(fault_plan_, fault_site::kEcallRun); !s.is_ok())
    return fail(s.code(), s.message());
  auto outcome = enclave_->ecall_run(cost_budget);
  if (!outcome.is_ok()) return fail(outcome.code(), outcome.message());
  if (cost_budget > 0 && outcome.value().result.exit == vm::Exit::CostLimit &&
      cost_budget < enclave_->config().vm.max_cost)
    return fail("deadline_exceeded", "request exceeded its VM cost budget");
  if (metrics != nullptr) {
    metrics->cost = outcome.value().result.cost;
    metrics->violation = outcome.value().policy_violation;
  }
  if (outcome.value().policy_violation)
    return fail("policy_violation", "service aborted through the violation stub");
  std::vector<Bytes> outputs;
  for (const auto& sealed : outcome.value().sealed_output) {
    auto plain = owner_->open_output(BytesView(sealed));
    if (!plain.is_ok()) return fail(plain.code(), plain.message());
    outputs.push_back(plain.take());
  }
  return outputs;
}

}  // namespace deflection::core
