// Multi-worker service pool (paper Sec. VII, "Supporting multi-threading").
//
// The paper discusses concurrently serving many clients and the hazards of
// doing so in one enclave (TOCTOU on CFI metadata, shared shadow stacks).
// This reproduction takes the safe deployment the discussion converges on:
// one single-threaded verified service instance per worker enclave, each
// with fully private stacks/shadow stacks/SSA, fronted by a dispatcher.
// Verification cost is paid once per worker; requests are load-balanced
// round-robin and there is no shared mutable state to race on.
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"

namespace deflection::core {

class ServicePool {
 public:
  // Spins up `workers` bootstrap enclaves on distinct (simulated)
  // platforms, attests each, and delivers the same sealed service binary.
  static Result<std::unique_ptr<ServicePool>> create(const codegen::Dxo& service,
                                                     const BootstrapConfig& config,
                                                     int workers);

  // Dispatches one request to the next worker; returns the opened outputs.
  Result<std::vector<Bytes>> submit(BytesView request);

  int workers() const { return static_cast<int>(workers_.size()); }
  // Total VM cost accrued across all workers (for benches).
  std::uint64_t total_cost() const { return total_cost_; }

 private:
  struct Worker {
    std::unique_ptr<sgx::QuotingEnclave> quoting;
    std::unique_ptr<BootstrapEnclave> enclave;
    std::unique_ptr<DataOwner> owner;
    std::unique_ptr<CodeProvider> provider;
  };

  sgx::AttestationService as_;
  std::vector<Worker> workers_;
  std::size_t next_ = 0;
  std::uint64_t total_cost_ = 0;
};

}  // namespace deflection::core
