// Concurrent multi-worker service pool (paper Sec. VII, "Supporting
// multi-threading").
//
// The paper discusses concurrently serving many clients and the hazards of
// doing so in one enclave (TOCTOU on CFI metadata, shared shadow stacks).
// This reproduction takes the safe deployment the discussion converges on:
// one single-threaded verified service instance per worker enclave, each
// with fully private stacks/shadow stacks/SSA, fronted by a bounded MPMC
// request queue. Verification cost is paid once per worker (and once more
// per re-provision); there is no shared mutable state between workers to
// race on.
//
// Worker lifecycle: healthy -> quarantined -> re-provisioned. A worker
// whose request trips the violation stub or errors anywhere mid-request is
// quarantined: its enclave may hold poisoned service state (a half-consumed
// inbox, partially-written globals), so it is never silently reused.
// Before its next request the pool re-provisions it — enclave reset, fresh
// channel handshake, binary re-upload and re-verification — while the other
// workers keep serving. The provision/serve/re-provision mechanics live in
// core::ServiceWorker (core/worker.h), shared with the multi-tenant
// registry's slot fleet (src/registry/). See docs/serving.md.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/worker.h"
#include "support/queue.h"
#include "verifier/cache.h"

namespace deflection::core {

// Pool-wide counters, snapshot via ServicePool::stats().
struct PoolStats {
  std::uint64_t requests_served = 0;   // requests answered successfully
  std::uint64_t requests_failed = 0;   // requests answered with an error
  std::uint64_t violations = 0;        // aborts through the violation stub
  std::uint64_t retries = 0;           // worker re-provisions performed
  std::uint64_t reprovision_failures = 0;  // re-provision attempts that failed
  std::uint64_t deadline_exceeded = 0;     // requests cut off by a cost budget
  std::size_t queue_high_water = 0;    // deepest request backlog observed
  std::uint64_t total_cost = 0;        // VM cost accrued across all workers
  // Shared admission-cache counters (all zero when the cache is disabled):
  // worker 0's admission misses and fills, every later worker admission and
  // quarantine re-provision hits.
  verifier::CacheStats cache;
  struct WorkerStats {
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t cost = 0;
    std::uint64_t quarantines = 0;     // times this worker was quarantined
    std::uint64_t reprovisions = 0;    // successful re-provisions of this worker
    WorkerHealth health = WorkerHealth::Healthy;
  };
  std::vector<WorkerStats> workers;
};

struct PoolOptions {
  // Capacity of the shared request queue; submitters block (backpressure)
  // once this many requests are waiting.
  std::size_t queue_capacity = 64;
  // Wall-clock response blurring: the serving-layer analogue of
  // BootstrapConfig::time_blur_quantum (which blurs simulated VM cost).
  // When non-zero, a worker holds each response until the next multiple of
  // this duration since it picked the request up, so observable service
  // time is data-independent at this granularity. Throughput then scales
  // with workers even on one core: the pool overlaps the padding delays.
  std::chrono::microseconds response_blur{0};
  // Shared verified-binary admission cache: the pool verifies the service
  // binary once (worker 0's provision), and every later admission of the
  // same (digest, claimed policies, verify config) — the other workers'
  // provisions and every quarantine re-provision — reuses the cached
  // verdict, paying only the per-worker immediate rewrite. Disable to force
  // every admission through the full verifier.
  bool share_verification_cache = true;
  // Shard count for each worker's cold verification pass (VerifyConfig::
  // workers): >1 splits disassembly + policy checks across that many pool
  // threads with a byte-identical report. Orthogonal to the cache — the
  // sharded pass only runs on admissions that miss it.
  int verify_workers = 1;
  // Fault-injection seam (tests / chaos drills): when set, the plan is
  // installed on the pool's attestation service and every worker enclave,
  // so the `provision`, `serve`, `seal_input`, `ecall_run`, `cache_lookup`
  // and `quote_verify` sites are live. Null (the default) keeps every seam
  // a single pointer test.
  FaultPlanPtr fault_plan;
  // Per-request VM cost budget applied to every serve (0 = none): a run cut
  // off by it fails with code "deadline_exceeded" and quarantines the
  // worker like any other serve error.
  std::uint64_t cost_budget = 0;
};

class ServicePool {
 public:
  using Response = ServiceWorker::Response;

  // Spins up `workers` bootstrap enclaves on distinct (simulated)
  // platforms, attests each, delivers the same sealed service binary, and
  // starts one serving thread per worker.
  static Result<std::unique_ptr<ServicePool>> create(const codegen::Dxo& service,
                                                     const BootstrapConfig& config,
                                                     int workers,
                                                     const PoolOptions& options = {});

  // Stops intake and drains: the queue is closed (later submits fail
  // promptly with code "stopped"), every already-accepted request is
  // answered, and the worker threads are joined. Idempotent; the
  // destructor calls it. Not safe to call concurrently with itself.
  void stop();

  ~ServicePool();

  // Enqueues one request; the future resolves to the opened outputs (or an
  // error naming the worker that failed). Blocks only when the queue is at
  // capacity. After stop() the future is already resolved to the error
  // code "stopped" — it never hangs on the closed queue.
  std::future<Response> submit_async(BytesView request);

  // Synchronous convenience wrapper around submit_async.
  Response submit(BytesView request);

  int workers() const { return static_cast<int>(workers_.size()); }
  // Total VM cost accrued across all workers (for benches).
  std::uint64_t total_cost() const;
  PoolStats stats() const;

 private:
  struct Request {
    Bytes payload;
    std::promise<Response> promise;
  };
  struct Worker {
    std::unique_ptr<ServiceWorker> unit;
    // Owned by the worker thread after create() returns; the mirror the
    // stats() snapshot reads lives in stats_.workers under stats_mutex_.
    WorkerHealth health = WorkerHealth::Healthy;
    std::thread thread;
  };

  explicit ServicePool(const codegen::Dxo& service, const PoolOptions& options)
      : service_(service), options_(options), queue_(options.queue_capacity) {}

  void worker_main(Worker& w);

  codegen::Dxo service_;  // retained so quarantined workers can be re-provisioned
  PoolOptions options_;
  // One admission cache for all workers and every re-provision (null when
  // PoolOptions::share_verification_cache is off).
  std::shared_ptr<verifier::VerificationCache> cache_;
  sgx::AttestationService as_;
  std::vector<std::unique_ptr<Worker>> workers_;
  BoundedQueue<Request> queue_;
  mutable std::mutex stats_mutex_;
  PoolStats stats_;
};

}  // namespace deflection::core
