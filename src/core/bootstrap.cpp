#include "core/bootstrap.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "codegen/annotations.h"
#include "verifier/loader.h"

namespace deflection::core {

namespace {
constexpr const char* kConsumerVersion = "deflection-bootstrap-1.0";
}

Bytes BootstrapEnclave::consumer_image(const BootstrapConfig& config) {
  // A deterministic stand-in for the loader/verifier code pages: version
  // string plus the security-relevant configuration, so any change to the
  // consumer's behaviour changes the measurement (as rebuilding the real
  // enclave binary would).
  Bytes image;
  ByteWriter w(image);
  w.str(kConsumerVersion);
  w.u32(config.verify.required.mask());
  w.u64(config.output_pad_block);
  w.u64(config.entropy_budget);
  w.u64(config.time_blur_quantum);
  w.u8(config.sgxv2 ? 1 : 0);
  w.u8(config.allow_debug_print ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.verify.max_aex_threshold));
  w.u32(static_cast<std::uint32_t>(config.verify.max_probe_gap));
  for (std::uint8_t n : config.verify.allowed_ocalls) w.u8(n);
  return image;
}

crypto::Digest BootstrapEnclave::expected_mrenclave(const BootstrapConfig& config,
                                                    std::uint64_t enclave_base_arg) {
  // Replays the measurement the hardware performs in Loader::build_enclave;
  // the data owner runs this locally against the published consumer source.
  std::uint64_t base = enclave_base_arg == 0 ? config.enclave_base : enclave_base_arg;
  verifier::EnclaveLayout layout = verifier::EnclaveLayout::compute(base, config.layout);
  sgx::AddressSpace space(config.host_base, config.host_size, base, layout.enclave_size);
  sgx::Enclave shadow(space, layout.ssa_addr);
  auto built = verifier::Loader::build_enclave(shadow, base, config.layout,
                                               consumer_image(config));
  (void)built;
  return shadow.mrenclave();
}

BootstrapEnclave::BootstrapEnclave(sgx::QuotingEnclave& quoting,
                                   const BootstrapConfig& config)
    : config_(config), rng_(config.rng_seed), quoting_(quoting) {
  (void)rebuild();
}

Status BootstrapEnclave::rebuild() {
  layout_ = verifier::EnclaveLayout::compute(config_.enclave_base, config_.layout);
  space_ = std::make_unique<sgx::AddressSpace>(config_.host_base, config_.host_size,
                                               config_.enclave_base, layout_.enclave_size);
  enclave_ = std::make_unique<sgx::Enclave>(*space_, layout_.ssa_addr);
  auto built = verifier::Loader::build_enclave(*enclave_, config_.enclave_base,
                                               config_.layout, consumer_image(config_));
  if (built.is_ok()) layout_ = built.value();
  enclave_->set_aex_policy(config_.aex);
  enclave_->set_sgxv2(config_.sgxv2);
  return built.status();
}

Status BootstrapEnclave::reset() {
  owner_key_.reset();
  provider_key_.reset();
  dxo_.reset();
  binary_digest_.reset();
  loaded_.reset();
  block_cache_.clear();
  report_ = {};
  verified_ = false;
  inbox_.clear();
  entropy_spent_ = 0;
  // rng_ deliberately keeps advancing: reseeding would replay the previous
  // incarnation's DH keys and AEAD nonces.
  return rebuild();
}

crypto::Digest BootstrapEnclave::channel_report_data(Role role,
                                                     std::uint64_t enclave_dh_public) {
  Bytes msg;
  ByteWriter w(msg);
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(enclave_dh_public);
  return crypto::Sha256::hash(msg);
}

BootstrapEnclave::ChannelOffer BootstrapEnclave::open_channel(
    Role role, std::uint64_t peer_dh_public) {
  crypto::DhKeyPair pair = crypto::dh_generate(rng_);
  crypto::Key256 key = crypto::dh_shared_key(pair.secret, peer_dh_public);
  if (role == Role::DataOwner)
    owner_key_ = key;
  else
    provider_key_ = key;
  ChannelOffer offer;
  offer.enclave_dh_public = pair.public_value;
  offer.quote = quoting_.quote(enclave_->mrenclave(),
                               channel_report_data(role, pair.public_value));
  return offer;
}

Result<crypto::Digest> BootstrapEnclave::ecall_receive_binary(BytesView sealed) {
  if (!provider_key_.has_value())
    return Result<crypto::Digest>::fail("no_channel", "code-provider channel not open");
  auto plain = crypto::aead_open(*provider_key_, sealed);
  if (!plain.has_value())
    return Result<crypto::Digest>::fail("auth_fail", "binary payload failed authentication");
  auto dxo = codegen::Dxo::deserialize(*plain);
  if (!dxo.is_ok()) return dxo.error();
  dxo_ = dxo.take();
  verified_ = false;
  loaded_.reset();
  block_cache_.clear();  // drop the previous binary's predecoded blocks
  // The measurement doubles as the admission-cache key: it is computed here,
  // over the exact decrypted bytes that were deserialized, so a tampered
  // binary can never look up another binary's verdict.
  binary_digest_ = crypto::Sha256::hash(*plain);
  // The paper's flow: the bootstrap extracts the service-code measurement
  // and forwards it to the data owner, who approves before feeding data.
  return *binary_digest_;
}

Status BootstrapEnclave::ecall_receive_userdata(BytesView sealed) {
  if (!owner_key_.has_value())
    return Status::fail("no_channel", "data-owner channel not open");
  auto plain = crypto::aead_open(*owner_key_, sealed);
  if (!plain.has_value())
    return Status::fail("auth_fail", "user data failed authentication");
  inbox_.push_back(std::move(*plain));
  return Status::ok();
}

Result<std::uint64_t> BootstrapEnclave::handle_ocall(std::uint8_t num, std::uint64_t rdi,
                                                     std::uint64_t rsi, std::uint64_t rdx,
                                                     RunOutcome& outcome) {
  (void)rdx;
  switch (num) {
    case codegen::kOcallSend: {
      // P0 wrapper: copy out of the enclave, enforce the entropy budget,
      // encrypt under the data-owner session key and pad to a fixed block.
      if (rsi > config_.host_size)
        return Result<std::uint64_t>::fail("ocall_send_len", "implausible send length");
      auto payload = space_->copy_out(rdi, rsi);
      if (!payload.is_ok())
        return Result<std::uint64_t>::fail("ocall_send_oob", "send buffer unmapped");
      if (entropy_spent_ + rsi > config_.entropy_budget)
        return Result<std::uint64_t>::fail("entropy_budget",
                                           "output exceeds the entropy budget");
      entropy_spent_ += rsi;
      if (!owner_key_.has_value())
        return Result<std::uint64_t>::fail("no_channel", "no data-owner channel");
      Bytes framed;
      ByteWriter w(framed);
      w.u64(rsi);  // true length inside the padded frame
      w.bytes(BytesView(payload.value()));
      std::uint64_t block = config_.output_pad_block;
      std::uint64_t padded = (framed.size() + block - 1) / block * block;
      framed.resize(padded, 0);
      crypto::Nonce96 nonce{};
      std::uint64_t n0 = rng_.next(), n1 = rng_.next();
      std::memcpy(nonce.data(), &n0, 8);
      std::memcpy(nonce.data() + 8, &n1, 4);
      outcome.sealed_output.push_back(crypto::aead_seal(*owner_key_, nonce, framed));
      return rsi;
    }
    case codegen::kOcallRecv: {
      if (inbox_.empty()) return 0;  // nothing pending
      Bytes& msg = inbox_.front();
      std::uint64_t n = std::min<std::uint64_t>(msg.size(), rsi);
      if (auto s = space_->copy_in(rdi, BytesView(msg.data(), n)); !s.is_ok())
        return Result<std::uint64_t>::fail("ocall_recv_oob", "recv buffer unmapped");
      inbox_.pop_front();
      return n;
    }
    case codegen::kOcallPrint: {
      if (!config_.allow_debug_print)
        return Result<std::uint64_t>::fail("ocall_denied",
                                           "debug print denied by enclave configuration");
      outcome.debug_prints.push_back(static_cast<std::int64_t>(rdi));
      return 0;
    }
    default:
      return Result<std::uint64_t>::fail("ocall_unknown", "OCall not in the allowed set");
  }
}

Result<Bytes> BootstrapEnclave::seal_service_state() {
  if (!verified_ || !loaded_.has_value())
    return Result<Bytes>::fail("no_state", "no verified service loaded");
  // Snapshot globals + the heap up to the current bump pointer.
  std::uint64_t heap_ptr = loaded_->heap_base;
  auto slot = loaded_->symbols.find(codegen::kHeapPtrSymbol);
  sgx::MemFault mf;
  if (slot != loaded_->symbols.end()) {
    if (!space_->read_u64(slot->second, heap_ptr, mf))
      return Result<Bytes>::fail("seal_read", "cannot read heap pointer");
  }
  std::uint64_t end = std::max(heap_ptr, loaded_->data_base + loaded_->data_image_size);
  auto snapshot = space_->copy_out(loaded_->data_base, end - loaded_->data_base);
  if (!snapshot.is_ok()) return snapshot.error();

  Bytes plain;
  ByteWriter w(plain);
  w.u64(end - loaded_->data_base);
  w.u64(heap_ptr - loaded_->data_base);  // heap offset, layout-independent
  w.bytes(BytesView(snapshot.value()));
  crypto::Key256 key = quoting_.seal_key(enclave_->mrenclave());
  crypto::Nonce96 nonce{};
  std::uint64_t n0 = rng_.next(), n1 = rng_.next();
  std::memcpy(nonce.data(), &n0, 8);
  std::memcpy(nonce.data() + 8, &n1, 4);
  return crypto::aead_seal(key, nonce, plain);
}

Status BootstrapEnclave::unseal_service_state(BytesView sealed) {
  if (!verified_ || !loaded_.has_value())
    return Status::fail("no_state", "no verified service loaded");
  crypto::Key256 key = quoting_.seal_key(enclave_->mrenclave());
  auto plain = crypto::aead_open(key, sealed);
  if (!plain.has_value())
    return Status::fail("unseal_fail",
                        "sealed blob does not match this enclave/platform");
  ByteReader r{BytesView(*plain)};
  std::uint64_t size = r.u64();
  std::uint64_t heap_off = r.u64();
  Bytes image = r.bytes(size);
  if (!r.ok() || r.remaining() != 0 || heap_off > size)
    return Status::fail("unseal_malformed", "sealed state is malformed");
  if (loaded_->data_base + size > loaded_->heap_end)
    return Status::fail("unseal_size", "sealed state larger than the data region");
  if (auto s = space_->copy_in(loaded_->data_base, BytesView(image)); !s.is_ok())
    return s;
  auto slot = loaded_->symbols.find(codegen::kHeapPtrSymbol);
  sgx::MemFault mf;
  if (slot != loaded_->symbols.end() &&
      !space_->write_u64(slot->second, loaded_->data_base + heap_off, mf))
    return Status::fail("unseal_write", "cannot restore heap pointer");
  return Status::ok();
}

Status BootstrapEnclave::ensure_verified() {
  if (!dxo_.has_value())
    return Status::fail("no_binary", "no service binary delivered");
  if (verified_) return Status::ok();
  if (auto s = fault_check(config_.fault_plan, fault_site::kCacheLookup); !s.is_ok())
    return s;
  verifier::Loader loader(*enclave_, layout_);
  auto loaded = loader.load(*dxo_);
  if (!loaded.is_ok()) return loaded.status();
  loaded_ = loaded.take();
  verifier::VerificationCache* cache = config_.verify_cache.get();
  bool admitted = false;
  if (cache != nullptr && binary_digest_.has_value()) {
    // Single-flight admission: a cached verdict is reused outright; when
    // several enclaves cold-admit the same key concurrently, one of them
    // (the leader) verifies and the rest block for its verdict. Either way
    // a reused report was produced by the full verifier for a
    // byte-identical binary under an identical claimed-policy mask and
    // config; only the patch addresses differ (rebased by the cache onto
    // this enclave's text).
    using Role = verifier::VerificationCache::Admission::Role;
    auto adm = cache->begin_admission(*binary_digest_, *loaded_, config_.verify);
    if (adm.role == Role::Hit || (adm.role == Role::Waiter && adm.report.has_value())) {
      report_ = std::move(*adm.report);
      admitted = true;
    } else if (adm.role == Role::Waiter) {
      // The leader's verification failed; every waiter reports its exact
      // error, and nothing was cached — the next admission re-verifies.
      return *adm.failure;
    } else if (adm.role == Role::Leader) {
      if (auto s = fault_check(config_.fault_plan, fault_site::kVerifyFull); !s.is_ok()) {
        adm.ticket.fail(s);
        return s;
      }
      auto t0 = std::chrono::steady_clock::now();
      auto report = verifier::verify(*space_, *loaded_, config_.verify);
      if (!report.is_ok()) {
        adm.ticket.fail(report.status());
        return report.status();
      }
      auto verify_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      report_ = report.take();
      adm.ticket.publish(*loaded_, report_, verify_ns);
      admitted = true;
    }
    // Bypass falls through to the standalone verification below.
  }
  if (!admitted) {
    if (auto s = fault_check(config_.fault_plan, fault_site::kVerifyFull); !s.is_ok())
      return s;
    auto report = verifier::verify(*space_, *loaded_, config_.verify);
    if (!report.is_ok()) return report.status();
    report_ = report.take();
  }
  if (auto s = verifier::rewrite_immediates(*space_, *loaded_, report_); !s.is_ok())
    return s;
  // SGXv2 path: with relocation + rewriting done, the consumer never
  // writes the text again — restrict it to RX so self-modification is
  // also hardware-impossible (not just P4-checked).
  if (config_.sgxv2) {
    if (auto s = enclave_->modify_page_perms(layout_.text_base, layout_.text_size,
                                             sgx::kPermRX);
        !s.is_ok())
      return s;
  }
  verified_ = true;
  return Status::ok();
}

Status BootstrapEnclave::ecall_prepare() { return ensure_verified(); }

Result<RunOutcome> BootstrapEnclave::ecall_run(std::uint64_t cost_limit) {
  if (auto s = ensure_verified(); !s.is_ok()) return s.error();

  RunOutcome outcome;
  vm::VmConfig vm_cfg = config_.vm;
  if (cost_limit > 0 && cost_limit < vm_cfg.max_cost) vm_cfg.max_cost = cost_limit;
  vm::Vm machine(*enclave_, vm_cfg);
  // The per-enclave trace cache stays warm across ecall_runs of the same
  // loaded binary: repeat requests skip predecode entirely and inherit
  // already-linked blocks and promoted superblock loop traces from earlier
  // runs. Staleness is covered by the cache's generation stamps (binary
  // replacement goes through copy_in, which bumps the text generation).
  machine.set_block_cache(&block_cache_);
  if (trace_) machine.set_trace_hook(trace_);
  machine.set_ocall_handler([this, &outcome](std::uint8_t num, std::uint64_t rdi,
                                             std::uint64_t rsi, std::uint64_t rdx) {
    return handle_ocall(num, rdi, rsi, rdx, outcome);
  });
  outcome.result = machine.run(loaded_->entry, layout_.stack_top());
  // Sec. VII extension: blur the observable completion time to a quantum
  // boundary (the paper's "on-demand aligning/blurring processing time").
  if (config_.time_blur_quantum > 0 && outcome.result.exit == vm::Exit::Halt) {
    std::uint64_t q = config_.time_blur_quantum;
    outcome.result.cost = (outcome.result.cost + q - 1) / q * q;
  }
  if (outcome.result.exit == vm::Exit::Halt) {
    outcome.policy_violation = outcome.result.exit_code == codegen::kViolationExitCode;
    outcome.alloc_failure = outcome.result.exit_code == codegen::kOomExitCode;
  }
  return outcome;
}

}  // namespace deflection::core
