#include "core/bootstrap.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>

#include "codegen/annotations.h"
#include "crypto/cipher.h"
#include "verifier/loader.h"

namespace deflection::core {

namespace {
constexpr const char* kConsumerVersion = "deflection-bootstrap-1.0";
}

Bytes BootstrapEnclave::consumer_image(const BootstrapConfig& config) {
  // A deterministic stand-in for the loader/verifier code pages: version
  // string plus the security-relevant configuration, so any change to the
  // consumer's behaviour changes the measurement (as rebuilding the real
  // enclave binary would).
  Bytes image;
  ByteWriter w(image);
  w.str(kConsumerVersion);
  w.u32(config.verify.required.mask());
  w.u64(config.output_pad_block);
  w.u64(config.entropy_budget);
  w.u64(config.time_blur_quantum);
  w.u8(config.sgxv2 ? 1 : 0);
  w.u8(config.allow_debug_print ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.verify.max_aex_threshold));
  w.u32(static_cast<std::uint32_t>(config.verify.max_probe_gap));
  for (std::uint8_t n : config.verify.allowed_ocalls) w.u8(n);
  return image;
}

crypto::Digest BootstrapEnclave::expected_mrenclave(const BootstrapConfig& config,
                                                    std::uint64_t enclave_base_arg) {
  // Replays the measurement the hardware performs in Loader::build_enclave;
  // the data owner runs this locally against the published consumer source.
  std::uint64_t base = enclave_base_arg == 0 ? config.enclave_base : enclave_base_arg;
  verifier::EnclaveLayout layout = verifier::EnclaveLayout::compute(base, config.layout);
  sgx::AddressSpace space(config.host_base, config.host_size, base, layout.enclave_size);
  sgx::Enclave shadow(space, layout.ssa_addr);
  auto built = verifier::Loader::build_enclave(shadow, base, config.layout,
                                               consumer_image(config));
  (void)built;
  return shadow.mrenclave();
}

BootstrapEnclave::BootstrapEnclave(sgx::QuotingEnclave& quoting,
                                   const BootstrapConfig& config)
    : config_(config), rng_(config.rng_seed), quoting_(quoting) {
  (void)rebuild();
}

Status BootstrapEnclave::rebuild() {
  layout_ = verifier::EnclaveLayout::compute(config_.enclave_base, config_.layout);
  space_ = std::make_unique<sgx::AddressSpace>(config_.host_base, config_.host_size,
                                               config_.enclave_base, layout_.enclave_size);
  enclave_ = std::make_unique<sgx::Enclave>(*space_, layout_.ssa_addr);
  auto built = verifier::Loader::build_enclave(*enclave_, config_.enclave_base,
                                               config_.layout, consumer_image(config_));
  if (built.is_ok()) layout_ = built.value();
  enclave_->set_aex_policy(config_.aex);
  enclave_->set_sgxv2(config_.sgxv2);
  return built.status();
}

Status BootstrapEnclave::reset() {
  {
    // Scrub any in-flight delivery stream first: joins the pipeline worker
    // and abandons its admission ticket, so nothing of a half-delivered
    // binary survives into the next incarnation.
    std::lock_guard lock(stream_mutex_);
    stream_.reset();
  }
  owner_key_.reset();
  provider_key_.reset();
  dxo_.reset();
  binary_digest_.reset();
  loaded_.reset();
  block_cache_.clear();
  report_ = {};
  verified_ = false;
  inbox_.clear();
  entropy_spent_ = 0;
  // rng_ deliberately keeps advancing: reseeding would replay the previous
  // incarnation's DH keys and AEAD nonces.
  return rebuild();
}

crypto::Digest BootstrapEnclave::channel_report_data(Role role,
                                                     std::uint64_t enclave_dh_public) {
  Bytes msg;
  ByteWriter w(msg);
  w.u8(static_cast<std::uint8_t>(role));
  w.u64(enclave_dh_public);
  return crypto::Sha256::hash(msg);
}

BootstrapEnclave::ChannelOffer BootstrapEnclave::open_channel(
    Role role, std::uint64_t peer_dh_public) {
  crypto::DhKeyPair pair = crypto::dh_generate(rng_);
  crypto::Key256 key = crypto::dh_shared_key(pair.secret, peer_dh_public);
  if (role == Role::DataOwner)
    owner_key_ = key;
  else
    provider_key_ = key;
  ChannelOffer offer;
  offer.enclave_dh_public = pair.public_value;
  offer.quote = quoting_.quote(enclave_->mrenclave(),
                               channel_report_data(role, pair.public_value));
  return offer;
}

Result<crypto::Digest> BootstrapEnclave::ecall_receive_binary(BytesView sealed) {
  // One-shot wrapper over the stream path: begin -> single chunk -> commit,
  // so delivery, digest computation and scrub logic exist exactly once.
  // Content errors keep the legacy order — the AEAD tag over the whole
  // payload is checked before any parse verdict is reported — and admission
  // stays lazy (paid at ecall_prepare/ecall_run), as this surface always
  // promised. The paper's flow is unchanged: the bootstrap extracts the
  // service-code measurement and forwards it to the data owner, who
  // approves before feeding data.
  StreamOptions options;
  options.pipeline = false;
  if (auto s = ecall_stream_begin(sealed.size(), options); !s.is_ok()) {
    if (s.code() == "stream_bad_total")  // shorter than nonce+tag
      return Result<crypto::Digest>::fail("auth_fail",
                                          "binary payload failed authentication");
    return s.error();
  }
  if (auto s = ecall_stream_chunk(0, sealed); !s.is_ok()) return s.error();
  return stream_commit_internal(/*admit=*/false);
}

Status BootstrapEnclave::ecall_receive_userdata(BytesView sealed) {
  if (!owner_key_.has_value())
    return Status::fail("no_channel", "data-owner channel not open");
  auto plain = crypto::aead_open(*owner_key_, sealed);
  if (!plain.has_value())
    return Status::fail("auth_fail", "user data failed authentication");
  inbox_.push_back(std::move(*plain));
  return Status::ok();
}

// One in-flight chunked delivery. The chunk path (decrypt, measure, parse,
// stage relocations) runs on the caller's thread under stream_mutex_; the
// pipelined verifier runs on `worker`, synchronized only through the
// watermark handshake below. Destroying the state is the scrub: the worker
// is joined first, then members die — the staged text, the AEAD/digest
// state and any held admission ticket (whose destructor releases coalesced
// waiters with "admission_abandoned") all go at once.
struct BootstrapEnclave::StreamState {
  StreamOptions options;
  std::uint64_t total = 0;     // declared sealed length
  std::uint64_t fed = 0;       // sealed bytes accepted so far
  std::uint64_t next_seq = 0;  // strict chunk ordering
  std::chrono::steady_clock::time_point started;
  std::chrono::steady_clock::time_point last_activity;
  crypto::AeadStreamOpener opener;
  crypto::Sha256 plain_digest;  // incremental SHA-256 of the plaintext
  codegen::DxoStreamParser parser;
  Bytes scratch;  // per-chunk decrypted bytes

  // Relocation staging (from tables-ready on). Values are applied into the
  // parser's text buffer as soon as their 8-byte windows are fully
  // delivered; load() re-applies the same values at commit (idempotent).
  bool resolve_ok = false;
  std::optional<verifier::LoadedBinary> provisional;
  struct PendingReloc {
    std::uint64_t off;
    std::uint64_t value;
  };
  std::vector<PendingReloc> relocs;  // sorted by off
  std::size_t next_reloc = 0;

  // Early single-flight admission under the claimed identity.
  bool early_polled = false;
  verifier::VerificationCache::Admission early;

  // Pipelined verification. `watermark` counts FINAL text bytes: every byte
  // below it has been delivered and had its relocations applied, so the
  // worker may read it. The chunk thread only ever writes at offsets >= the
  // previously published watermark; the worker only reads below a watermark
  // it observed under `m` — the mutex handshake orders every write before
  // every read.
  bool pipeline_wanted = false;
  bool pipeline_ok = false;  // worker health; read only after join
  std::unique_ptr<verifier::StreamingVerifier> sv;
  std::thread worker;
  std::mutex m;
  std::condition_variable cv;
  std::uint64_t watermark = 0;  // under m
  bool stop = false;            // under m
  FaultPlanPtr fault_plan;

  bool expired_at(std::chrono::steady_clock::time_point now) const {
    using std::chrono::nanoseconds;
    if (options.deadline_ns > 0 &&
        now - started > nanoseconds(options.deadline_ns))
      return true;
    if (options.idle_timeout_ns > 0 &&
        now - last_activity > nanoseconds(options.idle_timeout_ns))
      return true;
    return false;
  }

  void publish(std::uint64_t wm) {
    {
      std::lock_guard lock(m);
      watermark = wm;
    }
    cv.notify_one();
  }

  void halt_worker() {
    {
      std::lock_guard lock(m);
      stop = true;
    }
    cv.notify_all();
    if (worker.joinable()) worker.join();
  }

  void run_worker() {
    std::uint64_t done = 0;
    bool healthy = true;
    for (;;) {
      std::uint64_t wm;
      {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return stop || watermark > done; });
        if (stop) return;
        wm = watermark;
      }
      if (healthy) {
        // An injected fault or a verifier anomaly degrades gracefully: the
        // worker goes quiet and commit falls back to the serial verifier,
        // which owns exact error selection.
        if (!fault_check(fault_plan, fault_site::kStreamVerifyRegion).is_ok() ||
            !sv->advance(wm))
          healthy = false;
        pipeline_ok = healthy;  // read only after join (happens-before)
      }
      done = wm;
    }
  }

  ~StreamState() { halt_worker(); }
};

BootstrapEnclave::~BootstrapEnclave() = default;

bool BootstrapEnclave::stream_active() const {
  std::lock_guard lock(stream_mutex_);
  return stream_ != nullptr;
}

Status BootstrapEnclave::ecall_stream_begin(std::uint64_t total_len,
                                            const StreamOptions& options) {
  if (!provider_key_.has_value())
    return Status::fail("no_channel", "code-provider channel not open");
  std::lock_guard lock(stream_mutex_);
  if (stream_ != nullptr)
    return Status::fail("stream_busy", "a delivery stream is already active");
  if (total_len > kMaxSealedStreamLen)
    return Status::fail("stream_bad_total", "declared stream length implausible");
  auto st = std::make_unique<StreamState>();
  if (!st->opener.begin(*provider_key_, total_len))
    return Status::fail("stream_bad_total", "declared stream length implausible");
  st->options = options;
  st->total = total_len;
  st->started = st->last_activity = std::chrono::steady_clock::now();
  st->fault_plan = config_.fault_plan;
  stream_ = std::move(st);
  return Status::ok();
}

Status BootstrapEnclave::ecall_stream_chunk(std::uint64_t seq, BytesView bytes) {
  std::lock_guard lock(stream_mutex_);
  if (stream_ == nullptr)
    return Status::fail("stream_inactive", "no delivery stream active");
  StreamState& st = *stream_;
  auto now = std::chrono::steady_clock::now();
  if (st.expired_at(now)) {
    stream_.reset();
    return Status::fail("stream_expired", "delivery stream missed its deadline");
  }
  if (seq != st.next_seq) {
    const std::uint64_t expected = st.next_seq;  // read before the scrub frees st
    stream_.reset();  // duplicates and gaps are indistinguishable from replay
    return Status::fail("stream_out_of_order",
                        "chunk " + std::to_string(seq) + " arrived, expected " +
                            std::to_string(expected));
  }
  if (st.fed + bytes.size() < st.fed || st.fed + bytes.size() > st.total) {
    stream_.reset();
    return Status::fail("stream_overrun", "chunk bytes exceed the declared total");
  }
  if (auto s = fault_check(config_.fault_plan, fault_site::kStreamChunk);
      !s.is_ok()) {
    stream_.reset();  // fail-closed: an injected delivery fault kills the stream
    return s;
  }
  st.scratch.clear();
  if (!st.opener.feed(bytes, st.scratch)) {
    stream_.reset();
    return Status::fail("stream_overrun", "chunk bytes exceed the declared total");
  }
  st.fed += bytes.size();
  ++st.next_seq;
  st.last_activity = now;
  if (!st.scratch.empty()) {
    st.plain_digest.update(BytesView(st.scratch));
    // Content errors are deliberately NOT reported here: the plaintext is
    // unauthenticated until the commit-time tag check, so a parse verdict
    // now would leak plaintext structure pre-auth. The poisoned parser
    // swallows further feeds and commit reports the error after "auth_fail"
    // has had its chance.
    bool was_ready = st.parser.tables_ready();
    (void)st.parser.feed(BytesView(st.scratch));
    if (!was_ready && st.parser.tables_ready()) stream_tables_ready_locked();
    stream_apply_relocs_locked();
  }
  return Status::ok();
}

void BootstrapEnclave::stream_tables_ready_locked() {
  StreamState& st = *stream_;
  verifier::Loader loader(*enclave_, layout_);
  auto resolved = loader.resolve(st.parser.dxo());
  // A resolve failure is not reported here: commit's load() reproduces the
  // exact same error post-auth. The stream just loses its pipeline.
  if (!resolved.is_ok()) return;
  st.provisional = resolved.take();
  st.resolve_ok = true;

  // Stage relocation values sorted by text offset. Overlapping 8-byte
  // windows would make the staged bytes depend on application order (load()
  // applies in dxo order), so they disable pipelining rather than risk
  // verifying bytes that differ from the loaded image.
  const codegen::Dxo& dxo = st.parser.dxo();
  st.relocs.reserve(dxo.relocs.size());
  for (const auto& rel : dxo.relocs) {
    std::uint64_t value = st.provisional->symbols.at(rel.symbol) +
                          static_cast<std::uint64_t>(rel.addend);
    st.relocs.push_back({rel.text_offset, value});
  }
  std::stable_sort(
      st.relocs.begin(), st.relocs.end(),
      [](const StreamState::PendingReloc& a, const StreamState::PendingReloc& b) {
        return a.off < b.off;
      });
  bool overlap = false;
  for (std::size_t i = 1; i < st.relocs.size(); ++i)
    if (st.relocs[i - 1].off + 8 > st.relocs[i].off) overlap = true;

  // Early single-flight admission under the claimed identity: a resident
  // verdict or an in-flight leader for (claimed digest, claimed mask,
  // config) makes our own pipeline redundant. The claim is unauthenticated
  // until commit, but that is sound: the poll only coalesces work, and the
  // verdict is adopted/published only after the digest check proves the
  // delivered bytes ARE the claimed bytes.
  bool claimed = st.options.claimed_digest != crypto::Digest{};
  bool mask_ok = st.options.claimed_mask == dxo.policies.mask();
  if (claimed && !mask_ok) return;  // commit fails the claim; skip the pipeline
  verifier::VerificationCache* cache = config_.verify_cache.get();
  using Role = verifier::VerificationCache::Admission::Role;
  bool skip_pipeline = false;
  if (claimed && cache != nullptr) {
    st.early = cache->poll_admission(st.options.claimed_digest, *st.provisional,
                                     config_.verify);
    st.early_polled = true;
    if (st.early.role == Role::Hit || st.early.role == Role::InFlight)
      skip_pipeline = true;  // verdict exists / leader elsewhere
  }
  if (!st.options.pipeline || overlap || skip_pipeline ||
      config_.verify.custom_check != nullptr)
    return;
  st.sv = std::make_unique<verifier::StreamingVerifier>(
      BytesView(st.parser.dxo().text), *st.provisional, config_.verify);
  st.pipeline_wanted = true;
  st.pipeline_ok = true;
  st.worker = std::thread([s = stream_.get()] { s->run_worker(); });
}

void BootstrapEnclave::stream_apply_relocs_locked() {
  StreamState& st = *stream_;
  if (!st.resolve_ok) return;
  const std::uint64_t received = st.parser.text_received();
  Bytes& text = st.parser.dxo().text;
  while (st.next_reloc < st.relocs.size() &&
         st.relocs[st.next_reloc].off + 8 <= received) {
    store_le64(text.data() + st.relocs[st.next_reloc].off,
               st.relocs[st.next_reloc].value);
    ++st.next_reloc;
  }
  if (!st.pipeline_wanted) return;
  // The publishable prefix holds back to the earliest relocation window
  // still awaiting bytes: everything below it is final.
  std::uint64_t wm = received;
  if (st.next_reloc < st.relocs.size())
    wm = std::min<std::uint64_t>(wm, st.relocs[st.next_reloc].off);
  st.publish(wm);
}

Result<crypto::Digest> BootstrapEnclave::ecall_stream_commit() {
  return stream_commit_internal(/*admit=*/true);
}

Status BootstrapEnclave::ecall_stream_abort() {
  std::lock_guard lock(stream_mutex_);
  stream_.reset();  // idempotent; joins the worker, drops any held ticket
  return Status::ok();
}

Result<crypto::Digest> BootstrapEnclave::stream_commit_internal(bool admit) {
  std::unique_ptr<StreamState> st;
  {
    std::lock_guard lock(stream_mutex_);
    if (stream_ == nullptr)
      return Result<crypto::Digest>::fail("stream_inactive",
                                          "no delivery stream active");
    if (stream_->expired_at(std::chrono::steady_clock::now())) {
      stream_.reset();
      return Result<crypto::Digest>::fail("stream_expired",
                                          "delivery stream missed its deadline");
    }
    // Commit owns the stream from here: abort/reaper calls see it gone and
    // are no-ops, so they never block behind an admission wait below.
    st = std::move(stream_);
  }
  // Propagate commit failures to coalesced waiters through the held leader
  // ticket (no-op otherwise); `st` then dies, scrubbing everything staged.
  auto fail = [&st](const std::string& code, const std::string& msg) {
    Status s = Status::fail(code, msg);
    if (st->early_polled) st->early.ticket.fail(s);
    return Result<crypto::Digest>(s.error());
  };
  if (auto s = fault_check(config_.fault_plan, fault_site::kStreamCommit);
      !s.is_ok()) {
    if (st->early_polled) st->early.ticket.fail(s);
    return s.error();
  }
  st->halt_worker();
  if (st->fed != st->total)
    return fail("stream_incomplete", "commit before the declared total arrived");
  if (!st->opener.finish())
    return fail("auth_fail", "binary payload failed authentication");
  if (!st->parser.finish()) return fail("dxo_malformed", st->parser.error());
  crypto::Digest digest = st->plain_digest.finish();
  bool claimed = st->options.claimed_digest != crypto::Digest{};
  if (claimed && digest != st->options.claimed_digest)
    return fail("stream_digest_mismatch",
                "delivered binary does not match the claimed digest");
  if (claimed && st->options.claimed_mask != st->parser.dxo().policies.mask())
    return fail("stream_claim_mismatch",
                "delivered binary does not carry the claimed policy mask");

  // Install the delivered binary — the digest is computed over the exact
  // decrypted bytes that were parsed, so a tampered binary can never look
  // up another binary's verdict.
  dxo_ = std::move(st->parser.dxo());
  binary_digest_ = digest;
  verified_ = false;
  loaded_.reset();
  block_cache_.clear();
  if (admit) {
    if (auto s = stream_admit(digest, *st); !s.is_ok()) return s.error();
  }
  return digest;
}

Status BootstrapEnclave::stream_admit(const crypto::Digest& digest,
                                      StreamState& st) {
  verifier::Loader loader(*enclave_, layout_);
  auto loaded = loader.load(*dxo_);
  if (!loaded.is_ok()) {
    if (st.early_polled) st.early.ticket.fail(loaded.status());
    return loaded.status();
  }
  loaded_ = loaded.take();

  // Harvest the pipelined verdict (worker already joined). finish() runs
  // the tail — leaf resolution, entry/probe checks, report merge — on this
  // thread; any disagreement degrades to the serial verifier below.
  auto t0 = std::chrono::steady_clock::now();
  std::optional<verifier::VerifyReport> piped;
  if (st.pipeline_wanted && st.pipeline_ok) piped = st.sv->finish();
  auto verify_with_pipeline = [&]() -> Result<verifier::VerifyReport> {
    if (piped.has_value()) return *piped;
    return verifier::verify(*space_, *loaded_, config_.verify);
  };
  auto elapsed_ns = [&t0] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  using Role = verifier::VerificationCache::Admission::Role;
  verifier::VerificationCache* cache = config_.verify_cache.get();
  bool admitted = false;
  if (st.early_polled && st.early.role == Role::Hit) {
    // The digest check above proved the delivered bytes ARE the claimed
    // bytes, so the early verdict (already rebased onto this layout —
    // identical to the final one) applies.
    report_ = std::move(*st.early.report);
    admitted = true;
  }
  if (!admitted && cache != nullptr) {
    verifier::VerificationCache::Admission adm;
    if (st.early_polled && st.early.role == Role::Leader) {
      adm = std::move(st.early);
    } else {
      // No early claim, or the key was in flight at tables-ready: admit
      // under the ACTUAL digest now, waiting at most the stream's remaining
      // deadline for a foreign leader ("admission_timeout" on expiry).
      std::optional<std::chrono::nanoseconds> max_wait;
      if (st.options.deadline_ns > 0) {
        auto budget = std::chrono::nanoseconds(st.options.deadline_ns);
        auto spent = std::chrono::steady_clock::now() - st.started;
        if (spent >= budget)
          return Status::fail("stream_expired",
                              "delivery stream missed its deadline");
        max_wait = budget - std::chrono::duration_cast<std::chrono::nanoseconds>(
                                spent);
      }
      adm = cache->begin_admission(digest, *loaded_, config_.verify, max_wait);
    }
    if (adm.role == Role::Hit ||
        (adm.role == Role::Waiter && adm.report.has_value())) {
      report_ = std::move(*adm.report);
      admitted = true;
    } else if (adm.role == Role::Waiter) {
      return *adm.failure;
    } else if (adm.role == Role::Leader) {
      auto report = verify_with_pipeline();
      if (!report.is_ok()) {
        adm.ticket.fail(report.status());
        return report.status();
      }
      report_ = report.take();
      adm.ticket.publish(*loaded_, report_, elapsed_ns());
      admitted = true;
    }
    // Bypass falls through to the standalone path.
  }
  if (!admitted) {
    auto report = verify_with_pipeline();
    if (!report.is_ok()) return report.status();
    report_ = report.take();
  }
  if (auto s = verifier::rewrite_immediates(*space_, *loaded_, report_); !s.is_ok())
    return s;
  if (config_.sgxv2) {
    if (auto s = enclave_->modify_page_perms(layout_.text_base, layout_.text_size,
                                             sgx::kPermRX);
        !s.is_ok())
      return s;
  }
  verified_ = true;
  return Status::ok();
}

Result<std::uint64_t> BootstrapEnclave::handle_ocall(std::uint8_t num, std::uint64_t rdi,
                                                     std::uint64_t rsi, std::uint64_t rdx,
                                                     RunOutcome& outcome) {
  (void)rdx;
  switch (num) {
    case codegen::kOcallSend: {
      // P0 wrapper: copy out of the enclave, enforce the entropy budget,
      // encrypt under the data-owner session key and pad to a fixed block.
      if (rsi > config_.host_size)
        return Result<std::uint64_t>::fail("ocall_send_len", "implausible send length");
      auto payload = space_->copy_out(rdi, rsi);
      if (!payload.is_ok())
        return Result<std::uint64_t>::fail("ocall_send_oob", "send buffer unmapped");
      if (entropy_spent_ + rsi > config_.entropy_budget)
        return Result<std::uint64_t>::fail("entropy_budget",
                                           "output exceeds the entropy budget");
      entropy_spent_ += rsi;
      if (!owner_key_.has_value())
        return Result<std::uint64_t>::fail("no_channel", "no data-owner channel");
      Bytes framed;
      ByteWriter w(framed);
      w.u64(rsi);  // true length inside the padded frame
      w.bytes(BytesView(payload.value()));
      std::uint64_t block = config_.output_pad_block;
      std::uint64_t padded = (framed.size() + block - 1) / block * block;
      framed.resize(padded, 0);
      crypto::Nonce96 nonce{};
      std::uint64_t n0 = rng_.next(), n1 = rng_.next();
      std::memcpy(nonce.data(), &n0, 8);
      std::memcpy(nonce.data() + 8, &n1, 4);
      outcome.sealed_output.push_back(crypto::aead_seal(*owner_key_, nonce, framed));
      return rsi;
    }
    case codegen::kOcallRecv: {
      if (inbox_.empty()) return 0;  // nothing pending
      Bytes& msg = inbox_.front();
      std::uint64_t n = std::min<std::uint64_t>(msg.size(), rsi);
      if (auto s = space_->copy_in(rdi, BytesView(msg.data(), n)); !s.is_ok())
        return Result<std::uint64_t>::fail("ocall_recv_oob", "recv buffer unmapped");
      inbox_.pop_front();
      return n;
    }
    case codegen::kOcallPrint: {
      if (!config_.allow_debug_print)
        return Result<std::uint64_t>::fail("ocall_denied",
                                           "debug print denied by enclave configuration");
      outcome.debug_prints.push_back(static_cast<std::int64_t>(rdi));
      return 0;
    }
    default:
      return Result<std::uint64_t>::fail("ocall_unknown", "OCall not in the allowed set");
  }
}

Result<Bytes> BootstrapEnclave::seal_service_state() {
  if (!verified_ || !loaded_.has_value())
    return Result<Bytes>::fail("no_state", "no verified service loaded");
  // Snapshot globals + the heap up to the current bump pointer.
  std::uint64_t heap_ptr = loaded_->heap_base;
  auto slot = loaded_->symbols.find(codegen::kHeapPtrSymbol);
  sgx::MemFault mf;
  if (slot != loaded_->symbols.end()) {
    if (!space_->read_u64(slot->second, heap_ptr, mf))
      return Result<Bytes>::fail("seal_read", "cannot read heap pointer");
  }
  std::uint64_t end = std::max(heap_ptr, loaded_->data_base + loaded_->data_image_size);
  auto snapshot = space_->copy_out(loaded_->data_base, end - loaded_->data_base);
  if (!snapshot.is_ok()) return snapshot.error();

  Bytes plain;
  ByteWriter w(plain);
  w.u64(end - loaded_->data_base);
  w.u64(heap_ptr - loaded_->data_base);  // heap offset, layout-independent
  w.bytes(BytesView(snapshot.value()));
  crypto::Key256 key = quoting_.seal_key(enclave_->mrenclave());
  crypto::Nonce96 nonce{};
  std::uint64_t n0 = rng_.next(), n1 = rng_.next();
  std::memcpy(nonce.data(), &n0, 8);
  std::memcpy(nonce.data() + 8, &n1, 4);
  return crypto::aead_seal(key, nonce, plain);
}

Status BootstrapEnclave::unseal_service_state(BytesView sealed) {
  if (!verified_ || !loaded_.has_value())
    return Status::fail("no_state", "no verified service loaded");
  crypto::Key256 key = quoting_.seal_key(enclave_->mrenclave());
  auto plain = crypto::aead_open(key, sealed);
  if (!plain.has_value())
    return Status::fail("unseal_fail",
                        "sealed blob does not match this enclave/platform");
  ByteReader r{BytesView(*plain)};
  std::uint64_t size = r.u64();
  std::uint64_t heap_off = r.u64();
  Bytes image = r.bytes(size);
  if (!r.ok() || r.remaining() != 0 || heap_off > size)
    return Status::fail("unseal_malformed", "sealed state is malformed");
  if (loaded_->data_base + size > loaded_->heap_end)
    return Status::fail("unseal_size", "sealed state larger than the data region");
  if (auto s = space_->copy_in(loaded_->data_base, BytesView(image)); !s.is_ok())
    return s;
  auto slot = loaded_->symbols.find(codegen::kHeapPtrSymbol);
  sgx::MemFault mf;
  if (slot != loaded_->symbols.end() &&
      !space_->write_u64(slot->second, loaded_->data_base + heap_off, mf))
    return Status::fail("unseal_write", "cannot restore heap pointer");
  return Status::ok();
}

Status BootstrapEnclave::ensure_verified() {
  if (!dxo_.has_value())
    return Status::fail("no_binary", "no service binary delivered");
  if (verified_) return Status::ok();
  if (auto s = fault_check(config_.fault_plan, fault_site::kCacheLookup); !s.is_ok())
    return s;
  verifier::Loader loader(*enclave_, layout_);
  auto loaded = loader.load(*dxo_);
  if (!loaded.is_ok()) return loaded.status();
  loaded_ = loaded.take();
  verifier::VerificationCache* cache = config_.verify_cache.get();
  bool admitted = false;
  if (cache != nullptr && binary_digest_.has_value()) {
    // Single-flight admission: a cached verdict is reused outright; when
    // several enclaves cold-admit the same key concurrently, one of them
    // (the leader) verifies and the rest block for its verdict. Either way
    // a reused report was produced by the full verifier for a
    // byte-identical binary under an identical claimed-policy mask and
    // config; only the patch addresses differ (rebased by the cache onto
    // this enclave's text).
    using Role = verifier::VerificationCache::Admission::Role;
    auto adm = cache->begin_admission(*binary_digest_, *loaded_, config_.verify);
    if (adm.role == Role::Hit || (adm.role == Role::Waiter && adm.report.has_value())) {
      report_ = std::move(*adm.report);
      admitted = true;
    } else if (adm.role == Role::Waiter) {
      // The leader's verification failed; every waiter reports its exact
      // error, and nothing was cached — the next admission re-verifies.
      return *adm.failure;
    } else if (adm.role == Role::Leader) {
      if (auto s = fault_check(config_.fault_plan, fault_site::kVerifyFull); !s.is_ok()) {
        adm.ticket.fail(s);
        return s;
      }
      auto t0 = std::chrono::steady_clock::now();
      auto report = verifier::verify(*space_, *loaded_, config_.verify);
      if (!report.is_ok()) {
        adm.ticket.fail(report.status());
        return report.status();
      }
      auto verify_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      report_ = report.take();
      adm.ticket.publish(*loaded_, report_, verify_ns);
      admitted = true;
    }
    // Bypass falls through to the standalone verification below.
  }
  if (!admitted) {
    if (auto s = fault_check(config_.fault_plan, fault_site::kVerifyFull); !s.is_ok())
      return s;
    auto report = verifier::verify(*space_, *loaded_, config_.verify);
    if (!report.is_ok()) return report.status();
    report_ = report.take();
  }
  if (auto s = verifier::rewrite_immediates(*space_, *loaded_, report_); !s.is_ok())
    return s;
  // SGXv2 path: with relocation + rewriting done, the consumer never
  // writes the text again — restrict it to RX so self-modification is
  // also hardware-impossible (not just P4-checked).
  if (config_.sgxv2) {
    if (auto s = enclave_->modify_page_perms(layout_.text_base, layout_.text_size,
                                             sgx::kPermRX);
        !s.is_ok())
      return s;
  }
  verified_ = true;
  return Status::ok();
}

Status BootstrapEnclave::ecall_prepare() { return ensure_verified(); }

Result<RunOutcome> BootstrapEnclave::ecall_run(std::uint64_t cost_limit) {
  if (auto s = ensure_verified(); !s.is_ok()) return s.error();

  RunOutcome outcome;
  vm::VmConfig vm_cfg = config_.vm;
  if (cost_limit > 0 && cost_limit < vm_cfg.max_cost) vm_cfg.max_cost = cost_limit;
  vm::Vm machine(*enclave_, vm_cfg);
  // The per-enclave trace cache stays warm across ecall_runs of the same
  // loaded binary: repeat requests skip predecode entirely and inherit
  // already-linked blocks and promoted superblock loop traces from earlier
  // runs. Staleness is covered by the cache's generation stamps (binary
  // replacement goes through copy_in, which bumps the text generation).
  machine.set_block_cache(&block_cache_);
  if (trace_) machine.set_trace_hook(trace_);
  machine.set_ocall_handler([this, &outcome](std::uint8_t num, std::uint64_t rdi,
                                             std::uint64_t rsi, std::uint64_t rdx) {
    return handle_ocall(num, rdi, rsi, rdx, outcome);
  });
  outcome.result = machine.run(loaded_->entry, layout_.stack_top());
  // Sec. VII extension: blur the observable completion time to a quantum
  // boundary (the paper's "on-demand aligning/blurring processing time").
  if (config_.time_blur_quantum > 0 && outcome.result.exit == vm::Exit::Halt) {
    std::uint64_t q = config_.time_blur_quantum;
    outcome.result.cost = (outcome.result.cost + q - 1) / q * q;
  }
  if (outcome.result.exit == vm::Exit::Halt) {
    outcome.policy_violation = outcome.result.exit_code == codegen::kViolationExitCode;
    outcome.alloc_failure = outcome.result.exit_code == codegen::kOomExitCode;
  }
  return outcome;
}

}  // namespace deflection::core
