// TenantRouter: the multi-tenant front door.
//
// submit_async(tenant_id, request) feeds per-tenant bounded queues; a fixed
// crew of serving threads (one per slot) dispatches fairly across tenants
// and runs each request on a scheduler slot bound to that tenant. The unit
// of scale is tenants x slots: many code providers' verified services
// behind one front door, over a slot fleet that may be far smaller than the
// tenant count.
//
// Dispatch order (fair across tenants, warm when possible):
//   1. pending tenants with NO bound slot, round-robin — they must bind a
//      slot anyway, and serving them first guarantees every tenant makes
//      progress even with far fewer slots than tenants;
//   2. otherwise any pending tenant, round-robin — all of them have bound
//      slots, so the scheduler's affinity pass makes these dispatches warm
//      (no enclave work) in the common case.
//
// Intake error codes (all prompt — the returned future is already
// resolved, it never hangs on a queue):
//   "stopped"         submit/register after stop()
//   "unknown_tenant"  tenant never registered (or already drained away)
//   "draining"        tenant mid-drain (unregister_tenant in progress)
//   "rate_limited"    token bucket empty (TenantQuota::requests_per_sec)
//   "quota_exceeded"  per-tenant queue at TenantQuota::max_pending
//
// Drain ordering on unregister_tenant: (1) new submits start failing with
// "draining"; (2) every already-accepted request of the tenant is served to
// completion; (3) the tenant's idle slots are reset and unbound; (4) the
// registry record is dropped and the call returns. stop() closes intake
// ("stopped"), serves every accepted request of every tenant, then joins
// the serving threads — no future is ever abandoned.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "registry/registry.h"
#include "registry/scheduler.h"

namespace deflection::registry {

// Router-wide counters, snapshot via TenantRouter::stats().
struct RouterStats {
  std::uint64_t requests_served = 0;   // across all tenants
  std::uint64_t requests_failed = 0;
  std::uint64_t violations = 0;
  std::uint64_t total_cost = 0;
  // Per-tenant roll-up; drained (unregistered) tenants keep their final
  // counters here until the id is reused.
  std::map<TenantId, TenantStats> tenants;
  SchedulerStats scheduler;
  verifier::CacheStats cache;          // the shared admission cache
};

struct RouterOptions {
  // Size of the slot fleet AND of the serving-thread crew (one thread per
  // slot keeps acquire() non-blocking by construction).
  int slots = 2;
  // Uniform platform configuration: one consumer image, one required
  // policy set — the platform's published policy floor — for every tenant.
  // Its verify_cache member is overwritten with the router's shared cache.
  core::BootstrapConfig config;
  // Wall-clock response blurring, as PoolOptions::response_blur.
  std::chrono::microseconds response_blur{0};
  // Fault-injection seam, forwarded to every slot (re-)provision.
  core::ProvisionFault provision_fault;
};

class TenantRouter {
 public:
  using Response = core::ServiceWorker::Response;

  static Result<std::unique_ptr<TenantRouter>> create(const RouterOptions& options = {});

  // stop() + join.
  ~TenantRouter();

  // Admits the tenant through the shared cache (one full verification) and
  // opens its intake. See TenantRegistry::admit for the error codes.
  Result<crypto::Digest> register_tenant(const TenantId& id, const codegen::Dxo& service,
                                         const TenantQuota& quota = {});

  // Graceful drain: rejects new submits with "draining", serves every
  // already-accepted request of the tenant, resets + unbinds its slots,
  // then removes the record. Blocks until the drain completes. Must not be
  // called from a serving context (a submitted request's continuation).
  Status unregister_tenant(const TenantId& id);

  // Enqueues one request for `id`; the future resolves to the opened
  // outputs or an error (see the intake error codes above — intake
  // rejections come back already resolved).
  std::future<Response> submit_async(const TenantId& id, BytesView request);

  // Synchronous convenience wrapper around submit_async.
  Response submit(const TenantId& id, BytesView request);

  // Closes intake (submits fail with "stopped"), serves every accepted
  // request, joins the serving threads. Idempotent; the destructor calls
  // it. Not safe to call concurrently with itself.
  void stop();

  int slots() const { return scheduler_->slots(); }
  const TenantRegistry& registry() const { return *registry_; }
  EnclaveSlotScheduler& scheduler() { return *scheduler_; }
  RouterStats stats() const;

 private:
  struct Pending {
    Bytes payload;
    std::promise<Response> promise;
  };
  struct TenantState {
    std::shared_ptr<const TenantRecord> record;
    std::deque<Pending> queue;
    std::size_t inflight = 0;
    bool draining = false;
    double tokens = 0.0;                                  // token bucket fill
    std::chrono::steady_clock::time_point last_refill{};  // last bucket update
    TenantStats stats;
  };

  explicit TenantRouter(const RouterOptions& options) : options_(options) {}

  void worker_main();
  // Fair dispatch under mutex_: the next pending tenant per the order
  // documented above, or nullptr when nothing is pending.
  TenantState* pick_locked();
  Response serve_one(const TenantRecord& record, const Bytes& payload,
                     core::ServiceWorker::ServeMetrics* metrics);

  RouterOptions options_;
  std::shared_ptr<verifier::VerificationCache> cache_;
  std::unique_ptr<TenantRegistry> registry_;
  std::unique_ptr<EnclaveSlotScheduler> scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // serving threads: work available / stop
  std::condition_variable drain_cv_;  // unregister_tenant: tenant quiesced
  std::map<TenantId, std::unique_ptr<TenantState>> tenants_;
  std::map<TenantId, TenantStats> retired_;  // final stats of drained tenants
  TenantId cursor_;                   // round-robin: last tenant dispatched
  std::size_t total_pending_ = 0;
  bool stopped_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t total_cost_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace deflection::registry
