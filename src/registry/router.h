// TenantRouter: the multi-tenant front door.
//
// submit_async(tenant_id, request) feeds per-tenant bounded queues; a fixed
// crew of serving threads (one per slot) dispatches fairly across tenants
// and runs each request on a scheduler slot bound to that tenant. The unit
// of scale is tenants x slots: many code providers' verified services
// behind one front door, over a slot fleet that may be far smaller than the
// tenant count.
//
// Dispatch order (fair across tenants, warm when possible):
//   1. pending tenants with NO bound slot, round-robin — they must bind a
//      slot anyway, and serving them first guarantees every tenant makes
//      progress even with far fewer slots than tenants;
//   2. otherwise any pending tenant, round-robin — all of them have bound
//      slots, so the scheduler's affinity pass makes these dispatches warm
//      (no enclave work) in the common case.
//
// Intake error codes (all prompt — the returned future is already
// resolved, it never hangs on a queue):
//   "stopped"         submit/register after stop()
//   "unknown_tenant"  tenant never registered (or already drained away)
//   "draining"        tenant mid-drain (unregister_tenant in progress)
//   "circuit_open"    the tenant's circuit breaker is open (or half-open
//                     with its probe already in flight)
//   "rate_limited"    token bucket empty (TenantQuota::requests_per_sec)
//   "quota_exceeded"  per-tenant queue at TenantQuota::max_pending
//
// Resilience layer (docs/serving.md "Resilience"): per-request deadlines
// and VM cost budgets (RequestOptions -> "deadline_exceeded"), transparent
// retry of transient failures on a fresh slot with capped exponential
// backoff + deterministic jitter (RetryPolicy), and a per-tenant circuit
// breaker (BreakerPolicy: closed -> open after N consecutive serve
// failures, half-open single probe after a cooldown that doubles on every
// failed probe). All three default OFF and cost nothing when off.
//
// Drain ordering on unregister_tenant: (1) new submits start failing with
// "draining"; (2) every already-accepted request of the tenant is served to
// completion; (3) the tenant's idle slots are reset and unbound; (4) the
// registry record is dropped and the call returns. stop() closes intake
// ("stopped"), serves every accepted request of every tenant, then joins
// the serving threads — no future is ever abandoned.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "registry/registry.h"
#include "registry/scheduler.h"

namespace deflection::registry {

// Router-wide counters, snapshot via TenantRouter::stats().
struct RouterStats {
  std::uint64_t requests_served = 0;   // across all tenants
  std::uint64_t requests_failed = 0;
  std::uint64_t violations = 0;
  std::uint64_t retries = 0;           // transparent retry attempts, all tenants
  std::uint64_t deadline_exceeded = 0; // deadline/cost-budget failures, all tenants
  std::uint64_t breaker_opens = 0;     // breaker (re)opens, all tenants
  std::uint64_t total_cost = 0;
  // Per-tenant roll-up; drained (unregistered) tenants keep their final
  // counters here until the id is reused.
  std::map<TenantId, TenantStats> tenants;
  SchedulerStats scheduler;
  verifier::CacheStats cache;          // the shared admission cache

  // Front-end rollup: sums the scalar counters, merges per-tenant rows by
  // id (TenantStats::operator+=), concatenates scheduler slot rows and sums
  // cache counters. Used by ShardedFrontEnd to aggregate per-shard
  // snapshots (and the retired stats of killed shard generations).
  RouterStats& operator+=(const RouterStats& other);
};

struct RouterOptions {
  // Size of the slot fleet AND of the serving-thread crew (one thread per
  // slot keeps acquire() non-blocking by construction).
  int slots = 2;
  // Uniform platform configuration: one consumer image, one required
  // policy set — the platform's published policy floor — for every tenant.
  // Its verify_cache member is overwritten with the router's shared cache.
  core::BootstrapConfig config;
  // The admission cache the router shares between register-time admission
  // and every slot rebind. Null (the default) means the router creates a
  // private one; a front-end injects a per-shard cache here (typically
  // parented on a cross-shard shared cache, and preloaded from the sealed
  // store) so shards admit warm off each other's verdicts.
  std::shared_ptr<verifier::VerificationCache> verify_cache;
  // Wall-clock response blurring, as PoolOptions::response_blur.
  std::chrono::microseconds response_blur{0};
  // Fault-injection seam: installed on the register-time admission enclave,
  // the slot fleet and its attestation service (see
  // EnclaveSlotScheduler::Options::fault_plan for the live sites).
  FaultPlanPtr fault_plan;
  // Transparent retry of transient failures. A failure is transient when it
  // happened before any service code ran — a provision-stage failure
  // (acquire error: bind/handshake/attestation/backoff) — or when it is an
  // injected fault ("injected_fault"); "policy_violation" and
  // "deadline_exceeded" are never retried. Each retry re-acquires a slot
  // (the failed one is quarantined, so a DIFFERENT or freshly re-provisioned
  // slot serves the attempt) after sleeping
  // min(backoff_base * 2^(attempt-1), backoff_max) * jitter, jitter drawn
  // uniformly from [0.5, 1.0) off a per-thread Rng seeded from jitter_seed.
  struct RetryPolicy {
    int max_attempts = 1;  // total attempts per request; 1 = no retry
    std::chrono::microseconds backoff_base{500};
    std::chrono::microseconds backoff_max{50000};
  };
  RetryPolicy retry;
  // Per-tenant circuit breaker. Closed -> Open after `failure_threshold`
  // consecutive serve failures (0 disables); while Open, submits fail fast
  // with "circuit_open". After `cooldown` the next submit becomes the
  // half-open probe: its success closes the breaker (and resets the
  // cooldown), its failure re-opens with the cooldown doubled up to
  // `cooldown_max`. Failures here are post-intake failures — retry, if
  // enabled, runs first, so only requests that exhausted their attempts
  // count against the streak.
  struct BreakerPolicy {
    int failure_threshold = 0;  // consecutive failures to trip; 0 = disabled
    std::chrono::microseconds cooldown{100000};
    std::chrono::microseconds cooldown_max{1600000};
  };
  BreakerPolicy breaker;
  // Scheduler re-provision backoff, forwarded to the slot fleet (see
  // EnclaveSlotScheduler::Options).
  std::chrono::microseconds reprovision_backoff_base{1000};
  std::chrono::microseconds reprovision_backoff_max{250000};
  // Seed for the retry-jitter Rng (deterministic chaos runs).
  std::uint64_t jitter_seed = 0x1E77E8;
  // Bounds + deadlines for streaming registrations, forwarded to the
  // registry (shedding, reaper cadence).
  StreamLimits stream_limits;
};

// Per-request serving limits, both optional (0 = unlimited).
struct RequestOptions {
  // Wall-clock deadline measured from submit. A request whose deadline
  // passes before a serving thread picks it up — or between retry attempts
  // — fails with "deadline_exceeded" without touching a slot.
  std::chrono::microseconds deadline{0};
  // Total VM cost budget across all attempts of this request. An attempt
  // runs under the remaining budget (BootstrapEnclave::ecall_run cost
  // clamp); a run cut off by it fails with "deadline_exceeded".
  std::uint64_t cost_budget = 0;
};

class TenantRouter {
 public:
  using Response = core::ServiceWorker::Response;

  static Result<std::unique_ptr<TenantRouter>> create(const RouterOptions& options = {});

  // stop() + join.
  ~TenantRouter();

  // Admits the tenant through the shared cache (one full verification) and
  // opens its intake. See TenantRegistry::admit for the error codes.
  Result<crypto::Digest> register_tenant(const TenantId& id, const codegen::Dxo& service,
                                         const TenantQuota& quota = {});

  // Streaming registration: the chunked counterpart of register_tenant for
  // large binaries. begin claims the id and opens a registry stream
  // (bounded by RouterOptions::stream_limits — an over-limit begin sheds
  // fast with "admission_overloaded"); feed paces up to max_bytes of sealed
  // payload and returns the bytes still undelivered; commit completes
  // delivery + verification and opens the tenant's serving intake exactly
  // as register_tenant does. abort is idempotent; an expired or failed
  // stream reports its terminal error on the next touch. All entry points
  // fail with "stopped" after stop().
  using StreamHandle = TenantRegistry::StreamHandle;
  Result<StreamHandle> register_tenant_stream_begin(const TenantId& id,
                                                    const codegen::Dxo& service,
                                                    const TenantQuota& quota = {});
  Result<std::uint64_t> register_tenant_stream_feed(StreamHandle handle,
                                                    std::uint64_t max_bytes);
  Result<crypto::Digest> register_tenant_stream_commit(StreamHandle handle);
  Status register_tenant_stream_abort(StreamHandle handle);

  // Graceful drain: rejects new submits with "draining", serves every
  // already-accepted request of the tenant, resets + unbinds its slots,
  // then removes the record. Blocks until the drain completes. Must not be
  // called from a serving context (a submitted request's continuation).
  Status unregister_tenant(const TenantId& id);

  // Enqueues one request for `id`; the future resolves to the opened
  // outputs or an error (see the intake error codes above — intake
  // rejections come back already resolved). `request_options` attaches a
  // per-request deadline and/or VM cost budget.
  std::future<Response> submit_async(const TenantId& id, BytesView request,
                                     const RequestOptions& request_options = {});

  // Synchronous convenience wrapper around submit_async.
  Response submit(const TenantId& id, BytesView request,
                  const RequestOptions& request_options = {});

  // Closes intake (submits fail with "stopped"), serves every accepted
  // request, joins the serving threads. Idempotent; the destructor calls
  // it. Not safe to call concurrently with itself.
  void stop();

  int slots() const { return scheduler_->slots(); }
  const TenantRegistry& registry() const { return *registry_; }
  EnclaveSlotScheduler& scheduler() { return *scheduler_; }
  RouterStats stats() const;

 private:
  struct Pending {
    Bytes payload;
    std::promise<Response> promise;
    // Absolute deadline (time_point::max() = none) and remaining VM budget.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::uint64_t cost_budget = 0;
    bool is_probe = false;  // the half-open breaker's single probe request
  };
  enum class Breaker : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };
  struct TenantState {
    std::shared_ptr<const TenantRecord> record;
    std::deque<Pending> queue;
    std::size_t inflight = 0;
    bool draining = false;
    double tokens = 0.0;                                  // token bucket fill
    std::chrono::steady_clock::time_point last_refill{};  // last bucket update
    // Circuit-breaker state (all idle when BreakerPolicy is disabled).
    Breaker breaker = Breaker::Closed;
    std::uint64_t failure_streak = 0;                     // consecutive failures
    std::chrono::steady_clock::time_point open_until{};   // end of the cooldown
    std::chrono::microseconds cooldown{0};                // current (doubling) cooldown
    bool probe_inflight = false;                          // half-open probe out
    TenantStats stats;
  };

  explicit TenantRouter(const RouterOptions& options) : options_(options) {}

  void worker_main(int thread_index);
  // Fair dispatch under mutex_: the next pending tenant per the order
  // documented above, or nullptr when nothing is pending.
  TenantState* pick_locked();
  // One attempt: acquire -> serve -> release. Sets *provision_stage when
  // the failure happened at acquire (no service code ran).
  Response serve_one(const TenantRecord& record, const Bytes& payload,
                     core::ServiceWorker::ServeMetrics* metrics,
                     std::uint64_t cost_budget, bool* provision_stage);
  // The attempt loop: deadline/budget gates, serve_one, retry with capped
  // exponential backoff + jitter. Returns the final response; *retries_used
  // counts the extra attempts.
  Response serve_with_retries(const TenantRecord& record, const Pending& request,
                              core::ServiceWorker::ServeMetrics* metrics,
                              Rng& jitter_rng, std::uint64_t* retries_used);

  RouterOptions options_;
  std::shared_ptr<verifier::VerificationCache> cache_;
  std::unique_ptr<TenantRegistry> registry_;
  std::unique_ptr<EnclaveSlotScheduler> scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // serving threads: work available / stop
  std::condition_variable drain_cv_;  // unregister_tenant: tenant quiesced
  std::map<TenantId, std::unique_ptr<TenantState>> tenants_;
  std::map<TenantId, TenantStats> retired_;  // final stats of drained tenants
  // Streaming registrations in flight: handle -> tenant id, so commit can
  // open the right intake. Entries leave on commit/abort/terminal error.
  std::map<StreamHandle, TenantId> reg_streams_;
  TenantId cursor_;                   // round-robin: last tenant dispatched
  std::size_t total_pending_ = 0;
  bool stopped_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t total_cost_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace deflection::registry
