// EnclaveSlotScheduler: a fixed fleet of worker slots bound to tenants on
// demand.
//
// Each slot is a core::ServiceWorker — a fully private bootstrap enclave
// plus its remote-party actors — exactly like a ServicePool worker, except
// that WHICH tenant's binary the slot hosts changes over time:
//
//   unbound ──bind──▶ bound(T) ──serve──▶ bound(T)
//                        │  ▲                │ serve error
//                 evict  │  │ re-provision   ▼
//   bound(T') ◀──rebind──┘  └────────── quarantined(T)
//
// - acquire(T) prefers an idle slot already bound to T (warm: no enclave
//   work at all), then an unbound idle slot, then evicts the
//   least-recently-used idle slot of another tenant (LRU eviction of idle
//   tenants). A rebind is an enclave reset + full provision cycle; with the
//   shared admission cache pre-warmed at registration it replays the cached
//   verdict and pays only the immediate rewrite (warm rebind).
// - A slot whose request errored is quarantined, preserving its binding: it
//   is re-provisioned to the SAME tenant it was serving before it serves
//   again (or reset wholesale if rebound to another tenant — either way no
//   poisoned state survives into the next request).
// - Tenant isolation: every change of tenant goes through
//   BootstrapEnclave::reset(), which discards channel keys, the delivered
//   binary, verification state, queued inputs and entropy accounting, so
//   nothing of one tenant's session is observable from another's.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "core/worker.h"
#include "registry/tenant.h"

namespace deflection::registry {

// Fleet counters, snapshot via EnclaveSlotScheduler::stats().
struct SchedulerStats {
  std::uint64_t binds = 0;               // slot bound to a tenant it was not serving
  std::uint64_t evictions = 0;           // binds that displaced another tenant (LRU)
  std::uint64_t reprovisions = 0;        // same-tenant quarantine recoveries
  std::uint64_t provision_failures = 0;  // (re)binds/recoveries that failed
  std::uint64_t backoff_rejections = 0;  // acquires failed fast in re-provision backoff
  struct SlotStats {
    TenantId bound;                      // empty = unbound
    core::WorkerHealth health = core::WorkerHealth::Healthy;
    std::uint64_t serves = 0;            // requests dispatched to this slot
    std::uint64_t binds = 0;             // times this slot was (re)bound
    std::uint64_t quarantines = 0;       // times this slot was quarantined
  };
  std::vector<SlotStats> slots;

  // Front-end rollup: sums the fleet counters and concatenates the slot
  // rows — each shard owns a disjoint fleet, so the aggregate fleet is the
  // union, not an element-wise merge.
  SchedulerStats& operator+=(const SchedulerStats& other) {
    binds += other.binds;
    evictions += other.evictions;
    reprovisions += other.reprovisions;
    provision_failures += other.provision_failures;
    backoff_rejections += other.backoff_rejections;
    slots.insert(slots.end(), other.slots.begin(), other.slots.end());
    return *this;
  }
};

class EnclaveSlotScheduler {
 public:
  struct Options {
    // Uniform platform configuration (one policy floor for every tenant);
    // verify_cache should carry the cache shared with register-time
    // admission so rebinds are warm.
    core::BootstrapConfig config;
    // Fault-injection seam: installed on the fleet's attestation service
    // and every slot enclave (sites `provision`, `serve`, `seal_input`,
    // `ecall_run`, `cache_lookup`, `quote_verify`) plus the scheduler's own
    // `slot_bind` site, checked before every (re)bind provision.
    FaultPlanPtr fault_plan;
    // Re-provision backoff: after a slot's (re)bind provision fails, the
    // same tenant's next acquire of that slot fails fast with code
    // "provision_backoff" until base * 2^(streak-1) (capped at max) has
    // elapsed — so a persistently-broken tenant burns a bounded provision
    // rate instead of hot-looping the quarantine recovery path and starving
    // healthy tenants. base = 0 disables (every acquire retries at once).
    std::chrono::microseconds reprovision_backoff_base{1000};
    std::chrono::microseconds reprovision_backoff_max{250000};
  };

  // A slot acquired for exactly one request; release() it afterwards.
  struct Lease {
    int slot = -1;
  };

  static Result<std::unique_ptr<EnclaveSlotScheduler>> create(int slots,
                                                              const Options& options);

  // Picks, and if necessary (re)binds or recovers, an idle slot for
  // `tenant`, and marks it serving. Fails with "no_idle_slot" when every
  // slot is busy — callers that keep at most one outstanding lease per
  // serving thread, with threads <= slots, only see this while
  // unbind_tenant transiently claims a draining tenant's slots, so they
  // should treat it as transient and re-try shortly. Fails with the
  // provisioning error when the bind fails — in which case the slot stays
  // quarantined and bound to `tenant`, and the next acquire retries.
  Result<Lease> acquire(const TenantId& tenant, const codegen::Dxo& service);

  // Serves one request on the leased slot. A non-zero cost_budget tightens
  // the VM budget for this run (core::ServiceWorker::serve).
  core::ServiceWorker::Response serve(const Lease& lease, const Bytes& payload,
                                      core::ServiceWorker::ServeMetrics* metrics = nullptr,
                                      std::uint64_t cost_budget = 0);

  // Returns the slot to the idle pool; `ok=false` quarantines it (its next
  // acquire re-provisions before serving).
  void release(const Lease& lease, bool ok);

  // Drain epilogue: resets and unbinds every idle slot bound to `tenant`,
  // so its binary and channel keys do not linger in a warm enclave. The
  // caller guarantees the tenant has no in-flight request.
  void unbind_tenant(const TenantId& tenant);

  int slots() const { return static_cast<int>(slots_.size()); }
  std::size_t bound_slot_count(const TenantId& tenant) const;
  TenantId bound_tenant(int slot) const;
  core::WorkerHealth slot_health(int slot) const;
  SchedulerStats stats() const;

 private:
  struct Slot {
    std::unique_ptr<core::ServiceWorker> worker;
    TenantId bound;                  // empty = unbound
    bool busy = false;               // leased to a serving thread
    // True when the enclave is pristine (never provisioned, or reset by
    // unbind_tenant): binding may skip the redundant reset.
    bool pristine = true;
    core::WorkerHealth health = core::WorkerHealth::Healthy;
    std::uint64_t last_used = 0;     // LRU tick, updated at acquire
    // Re-provision backoff state: consecutive provision failures while
    // bound to the current tenant, and the earliest time the next attempt
    // is allowed. Cleared on provision success or rebind to another tenant.
    std::uint64_t provision_fail_streak = 0;
    std::chrono::steady_clock::time_point retry_after{};
    SchedulerStats::SlotStats counters;
  };

  explicit EnclaveSlotScheduler(const Options& options) : options_(options) {}

  Options options_;
  sgx::AttestationService as_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::uint64_t tick_ = 0;
  SchedulerStats stats_;
};

}  // namespace deflection::registry
