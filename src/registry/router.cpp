#include "registry/router.h"

#include <algorithm>

namespace deflection::registry {

namespace {

std::future<TenantRouter::Response> rejected(const std::string& code,
                                             const std::string& message) {
  std::promise<TenantRouter::Response> p;
  p.set_value(TenantRouter::Response::fail(code, message));
  return p.get_future();
}

}  // namespace

RouterStats& RouterStats::operator+=(const RouterStats& other) {
  requests_served += other.requests_served;
  requests_failed += other.requests_failed;
  violations += other.violations;
  retries += other.retries;
  deadline_exceeded += other.deadline_exceeded;
  breaker_opens += other.breaker_opens;
  total_cost += other.total_cost;
  for (const auto& [id, stats] : other.tenants) tenants[id] += stats;
  scheduler += other.scheduler;
  cache += other.cache;
  return *this;
}

Result<std::unique_ptr<TenantRouter>> TenantRouter::create(const RouterOptions& options) {
  using R = Result<std::unique_ptr<TenantRouter>>;
  if (options.slots < 1) return R::fail("fleet_size", "need >= 1 slot");
  std::unique_ptr<TenantRouter> router(new TenantRouter(options));
  // One admission cache shared by register-time admission and every slot
  // (re)bind: each distinct tenant binary is verified exactly once.
  router->cache_ = options.verify_cache ? options.verify_cache
                                        : std::make_shared<verifier::VerificationCache>();
  core::BootstrapConfig config = options.config;
  config.verify_cache = router->cache_;
  config.fault_plan = options.fault_plan;
  router->registry_ = std::make_unique<TenantRegistry>(config, options.stream_limits);
  EnclaveSlotScheduler::Options sched_options;
  sched_options.config = config;
  sched_options.fault_plan = options.fault_plan;
  sched_options.reprovision_backoff_base = options.reprovision_backoff_base;
  sched_options.reprovision_backoff_max = options.reprovision_backoff_max;
  auto sched = EnclaveSlotScheduler::create(options.slots, sched_options);
  if (!sched.is_ok()) return R::fail(sched.code(), sched.message());
  router->scheduler_ = sched.take();
  for (int i = 0; i < options.slots; ++i)
    router->threads_.emplace_back([raw = router.get(), i] { raw->worker_main(i); });
  return router;
}

TenantRouter::~TenantRouter() { stop(); }

void TenantRouter::stop() {
  {
    std::lock_guard lock(mutex_);
    stopped_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

Result<crypto::Digest> TenantRouter::register_tenant(const TenantId& id,
                                                     const codegen::Dxo& service,
                                                     const TenantQuota& quota) {
  {
    std::lock_guard lock(mutex_);
    if (stopped_)
      return Result<crypto::Digest>::fail("stopped", "router is stopped");
  }
  // Admission (a full verification on a cache miss) runs outside the
  // router mutex. The registry admits concurrently — each admission on its
  // own scratch consumer, identical binaries coalesced by the cache's
  // single-flight admission — so parallel register_tenant calls do not
  // serialise behind one verification.
  auto digest = registry_->admit(id, service, quota);
  if (!digest.is_ok()) return digest;
  auto state = std::make_unique<TenantState>();
  state->record = registry_->lookup(id);
  state->tokens = quota.burst;
  state->last_refill = std::chrono::steady_clock::now();
  state->cooldown = options_.breaker.cooldown;
  {
    std::lock_guard lock(mutex_);
    retired_.erase(id);
    tenants_[id] = std::move(state);
  }
  return digest;
}

Result<TenantRouter::StreamHandle> TenantRouter::register_tenant_stream_begin(
    const TenantId& id, const codegen::Dxo& service, const TenantQuota& quota) {
  {
    std::lock_guard lock(mutex_);
    if (stopped_)
      return Result<StreamHandle>::fail("stopped", "router is stopped");
  }
  auto handle = registry_->stream_begin(id, service, quota);
  if (!handle.is_ok()) return handle;
  std::lock_guard lock(mutex_);
  reg_streams_[handle.value()] = id;
  return handle;
}

Result<std::uint64_t> TenantRouter::register_tenant_stream_feed(
    StreamHandle handle, std::uint64_t max_bytes) {
  {
    std::lock_guard lock(mutex_);
    if (stopped_)
      return Result<std::uint64_t>::fail("stopped", "router is stopped");
  }
  auto remaining = registry_->stream_feed(handle, max_bytes);
  if (!remaining.is_ok()) {
    // Terminal (expired/failed) streams are gone from the registry too;
    // drop our handle so later touches report "unknown_stream" like it.
    std::lock_guard lock(mutex_);
    reg_streams_.erase(handle);
  }
  return remaining;
}

Result<crypto::Digest> TenantRouter::register_tenant_stream_commit(StreamHandle handle) {
  {
    std::lock_guard lock(mutex_);
    if (stopped_)
      return Result<crypto::Digest>::fail("stopped", "router is stopped");
  }
  TenantId id;
  {
    std::lock_guard lock(mutex_);
    auto it = reg_streams_.find(handle);
    if (it != reg_streams_.end()) id = it->second;
  }
  auto digest = registry_->stream_commit(handle);
  {
    std::lock_guard lock(mutex_);
    reg_streams_.erase(handle);
  }
  if (!digest.is_ok()) return digest;
  // Open the intake exactly as register_tenant does once admission lands.
  auto state = std::make_unique<TenantState>();
  state->record = registry_->lookup(id);
  if (state->record == nullptr)
    return Result<crypto::Digest>::fail(
        "unknown_tenant", "tenant '" + id + "' vanished between commit and intake");
  state->tokens = state->record->quota.burst;
  state->last_refill = std::chrono::steady_clock::now();
  state->cooldown = options_.breaker.cooldown;
  {
    std::lock_guard lock(mutex_);
    retired_.erase(id);
    tenants_[id] = std::move(state);
  }
  return digest;
}

Status TenantRouter::register_tenant_stream_abort(StreamHandle handle) {
  {
    std::lock_guard lock(mutex_);
    reg_streams_.erase(handle);
  }
  return registry_->stream_abort(handle);
}

Status TenantRouter::unregister_tenant(const TenantId& id) {
  std::unique_lock lock(mutex_);
  auto it = tenants_.find(id);
  if (it == tenants_.end())
    return Status::fail("unknown_tenant", "tenant '" + id + "' is not registered");
  TenantState* t = it->second.get();
  if (t->draining)
    return Status::fail("draining", "tenant '" + id + "' is already draining");
  // 1. Close this tenant's intake; 2. wait for every accepted request.
  t->draining = true;
  t->stats.draining = true;
  drain_cv_.wait(lock, [&] { return t->queue.empty() && t->inflight == 0; });
  TenantStats final_stats = t->stats;
  tenants_.erase(it);
  retired_[id] = final_stats;
  lock.unlock();
  // 3. Scrub the tenant's warm slots; 4. drop the record.
  scheduler_->unbind_tenant(id);
  (void)registry_->remove(id);
  return Status::ok();
}

std::future<TenantRouter::Response> TenantRouter::submit_async(
    const TenantId& id, BytesView request, const RequestOptions& request_options) {
  Pending pending;
  pending.payload = Bytes(request.begin(), request.end());
  pending.cost_budget = request_options.cost_budget;
  if (request_options.deadline.count() > 0)
    pending.deadline = std::chrono::steady_clock::now() + request_options.deadline;
  std::future<Response> future = pending.promise.get_future();
  std::lock_guard lock(mutex_);
  if (stopped_) return rejected("stopped", "router is stopped");
  auto it = tenants_.find(id);
  if (it == tenants_.end())
    return rejected("unknown_tenant", "tenant '" + id + "' is not registered");
  TenantState& t = *it->second;
  if (t.draining) return rejected("draining", "tenant '" + id + "' is draining");
  if (options_.breaker.failure_threshold > 0) {
    auto now = std::chrono::steady_clock::now();
    if (t.breaker == Breaker::Open) {
      if (now < t.open_until) {
        ++t.stats.rejected_breaker;
        return rejected("circuit_open", "tenant '" + id + "' circuit breaker is open");
      }
      // Cooldown over: the next accepted submit is the half-open probe.
      t.breaker = Breaker::HalfOpen;
      t.probe_inflight = false;
    }
    if (t.breaker == Breaker::HalfOpen && t.probe_inflight) {
      ++t.stats.rejected_breaker;
      return rejected("circuit_open", "tenant '" + id + "' circuit breaker is probing");
    }
  }
  const TenantQuota& quota = t.record->quota;
  if (quota.requests_per_sec > 0.0) {
    auto now = std::chrono::steady_clock::now();
    double elapsed = std::chrono::duration<double>(now - t.last_refill).count();
    t.tokens = std::min(quota.burst, t.tokens + elapsed * quota.requests_per_sec);
    t.last_refill = now;
    if (t.tokens < 1.0) {
      ++t.stats.rejected_rate;
      return rejected("rate_limited",
                      "tenant '" + id + "' is over its request rate");
    }
    t.tokens -= 1.0;
  }
  if (t.queue.size() >= quota.max_pending) {
    ++t.stats.rejected_quota;
    return rejected("quota_exceeded",
                    "tenant '" + id + "' has " + std::to_string(t.queue.size()) +
                        " requests pending (max " +
                        std::to_string(quota.max_pending) + ")");
  }
  // Mark the probe only once every other intake gate has passed, so a
  // rate/quota rejection can't leave a phantom probe in flight.
  if (t.breaker == Breaker::HalfOpen) {
    t.probe_inflight = true;
    pending.is_probe = true;
  }
  ++t.stats.submitted;
  t.queue.push_back(std::move(pending));
  t.stats.queue_high_water = std::max(t.stats.queue_high_water, t.queue.size());
  ++total_pending_;
  work_cv_.notify_one();
  return future;
}

TenantRouter::Response TenantRouter::submit(const TenantId& id, BytesView request,
                                            const RequestOptions& request_options) {
  return submit_async(id, request, request_options).get();
}

TenantRouter::TenantState* TenantRouter::pick_locked() {
  // Pass 0: pending tenants with no bound slot; pass 1: any pending
  // tenant. Both passes walk the id-ordered map cyclically from just past
  // the last dispatched tenant, so dispatch is round-robin within a pass.
  for (int pass = 0; pass < 2; ++pass) {
    auto it = tenants_.upper_bound(cursor_);
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (it == tenants_.end()) it = tenants_.begin();
      const TenantId& id = it->first;
      TenantState* t = it->second.get();
      ++it;
      if (t->queue.empty()) continue;
      if (pass == 0 && scheduler_->bound_slot_count(id) > 0) continue;
      cursor_ = id;
      return t;
    }
  }
  return nullptr;
}

TenantRouter::Response TenantRouter::serve_one(const TenantRecord& record,
                                               const Bytes& payload,
                                               core::ServiceWorker::ServeMetrics* metrics,
                                               std::uint64_t cost_budget,
                                               bool* provision_stage) {
  auto lease = scheduler_->acquire(record.id, record.service);
  // "no_idle_slot" is a scheduling artifact, not a request failure: with
  // one lease per serving thread and threads == slots it only surfaces
  // while unbind_tenant transiently claims a draining tenant's slots for
  // their reset. Slot busyness is bounded (a reset, or another thread's
  // in-flight request), so wait it out instead of failing the request.
  while (!lease.is_ok() && lease.code() == "no_idle_slot") {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    lease = scheduler_->acquire(record.id, record.service);
  }
  if (!lease.is_ok()) {
    if (provision_stage != nullptr) *provision_stage = true;
    return Response::fail(lease.code(), lease.message());
  }
  Response response = scheduler_->serve(lease.value(), payload, metrics, cost_budget);
  scheduler_->release(lease.value(), response.is_ok());
  return response;
}

TenantRouter::Response TenantRouter::serve_with_retries(
    const TenantRecord& record, const Pending& request,
    core::ServiceWorker::ServeMetrics* metrics, Rng& jitter_rng,
    std::uint64_t* retries_used) {
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  std::uint64_t spent_cost = 0;
  for (int attempt = 1;; ++attempt) {
    if (std::chrono::steady_clock::now() >= request.deadline)
      return Response::fail("deadline_exceeded", "request deadline passed");
    std::uint64_t attempt_budget = 0;
    if (request.cost_budget > 0) {
      if (spent_cost >= request.cost_budget)
        return Response::fail("deadline_exceeded",
                              "request exhausted its VM cost budget");
      attempt_budget = request.cost_budget - spent_cost;
    }
    core::ServiceWorker::ServeMetrics attempt_metrics;
    bool provision_stage = false;
    Response response = serve_one(record, request.payload, &attempt_metrics,
                                  attempt_budget, &provision_stage);
    spent_cost += attempt_metrics.cost;
    if (metrics != nullptr) {
      metrics->cost += attempt_metrics.cost;
      metrics->violation = attempt_metrics.violation;
    }
    if (response.is_ok()) return response;
    // Transient: nothing of the service ran (provision-stage failure) or
    // the fault was injected by a chaos plan. Service-level outcomes —
    // policy_violation, deadline_exceeded, auth failures — are final.
    const bool transient = provision_stage || response.code() == "injected_fault";
    if (!transient || attempt >= max_attempts) return response;
    std::uint64_t shift = std::min<std::uint64_t>(static_cast<std::uint64_t>(attempt) - 1, 20);
    auto delay = options_.retry.backoff_base * (std::int64_t{1} << shift);
    if (delay > options_.retry.backoff_max) delay = options_.retry.backoff_max;
    auto jittered = std::chrono::duration_cast<std::chrono::microseconds>(
        delay * (0.5 + 0.5 * jitter_rng.uniform()));
    if (jittered.count() > 0) std::this_thread::sleep_for(jittered);
    ++*retries_used;
  }
}

void TenantRouter::worker_main(int thread_index) {
  // Deterministic per-thread jitter stream: chaos runs with a fixed seed
  // replay the same backoff pattern per thread.
  Rng jitter_rng(options_.jitter_seed + static_cast<std::uint64_t>(thread_index));
  for (;;) {
    std::unique_lock lock(mutex_);
    work_cv_.wait(lock, [&] { return total_pending_ > 0 || stopped_; });
    if (total_pending_ == 0) {
      // stopped_ and fully drained: every accepted request was answered.
      if (stopped_) return;
      continue;
    }
    TenantState* t = pick_locked();
    if (t == nullptr) continue;  // defensive: counter and queues disagree
    Pending request = std::move(t->queue.front());
    t->queue.pop_front();
    --total_pending_;
    ++t->inflight;
    std::shared_ptr<const TenantRecord> record = t->record;
    lock.unlock();

    auto picked_up = std::chrono::steady_clock::now();
    core::ServiceWorker::ServeMetrics metrics;
    std::uint64_t retries_used = 0;
    Response response =
        serve_with_retries(*record, request, &metrics, jitter_rng, &retries_used);
    if (options_.response_blur.count() > 0) {
      // As in ServicePool: EVERY response leaves through the blur, so
      // observable service time is data-independent at this granularity.
      auto blur = options_.response_blur;
      auto elapsed = std::chrono::steady_clock::now() - picked_up;
      auto quanta = elapsed / blur + 1;
      std::this_thread::sleep_until(picked_up + quanta * blur);
    }

    lock.lock();
    t->stats.cost += metrics.cost;
    total_cost_ += metrics.cost;
    t->stats.retries += retries_used;
    retries_ += retries_used;
    if (response.is_ok()) {
      ++t->stats.served;
      ++served_;
    } else {
      ++t->stats.failed;
      ++failed_;
      if (response.code() == "policy_violation") {
        ++t->stats.violations;
        ++violations_;
      }
      if (response.code() == "deadline_exceeded") {
        ++t->stats.deadline_exceeded;
        ++deadline_exceeded_;
      }
    }
    if (options_.breaker.failure_threshold > 0) {
      auto now = std::chrono::steady_clock::now();
      if (response.is_ok()) {
        t->failure_streak = 0;
        if (request.is_probe) {
          // Probe succeeded: close and forget the escalated cooldown.
          t->breaker = Breaker::Closed;
          t->cooldown = options_.breaker.cooldown;
          t->probe_inflight = false;
        }
      } else if (request.is_probe) {
        // Probe failed: re-open with the cooldown doubled (capped).
        t->breaker = Breaker::Open;
        t->cooldown = std::min(t->cooldown * 2, options_.breaker.cooldown_max);
        t->open_until = now + t->cooldown;
        t->probe_inflight = false;
        ++t->stats.breaker_opens;
        ++breaker_opens_;
      } else {
        ++t->failure_streak;
        if (t->breaker == Breaker::Closed &&
            t->failure_streak >=
                static_cast<std::uint64_t>(options_.breaker.failure_threshold)) {
          t->breaker = Breaker::Open;
          t->cooldown = options_.breaker.cooldown;
          t->open_until = now + t->cooldown;
          ++t->stats.breaker_opens;
          ++breaker_opens_;
        }
      }
    }
    --t->inflight;
    const bool drained = t->draining && t->queue.empty() && t->inflight == 0;
    lock.unlock();
    // After the notify the draining thread may erase `t`; don't touch it.
    if (drained) drain_cv_.notify_all();
    request.promise.set_value(std::move(response));
  }
}

RouterStats TenantRouter::stats() const {
  RouterStats snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot.requests_served = served_;
    snapshot.requests_failed = failed_;
    snapshot.violations = violations_;
    snapshot.retries = retries_;
    snapshot.deadline_exceeded = deadline_exceeded_;
    snapshot.breaker_opens = breaker_opens_;
    snapshot.total_cost = total_cost_;
    snapshot.tenants = retired_;
    for (const auto& [id, state] : tenants_) snapshot.tenants[id] = state->stats;
  }
  snapshot.scheduler = scheduler_->stats();
  snapshot.cache = cache_->stats();
  return snapshot;
}

}  // namespace deflection::registry
