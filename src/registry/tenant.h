// Multi-tenant serving: tenant records, quotas and per-tenant counters.
//
// The paper's bootstrap enclave verifies one confidential binary and serves
// it forever; the registry subsystem (src/registry/) hosts MANY code
// providers' binaries behind one front door — the "batch of enclaves
// serving multiple users' policies" deployment sketched in Confidential
// Attestation (arXiv:2007.10513) — while each tenant still gets a fully
// private verified enclave per the isolation argument of TACPA
// (arXiv:2112.00346). A tenant is a (id, service binary, claimed policy
// mask, quota) record admitted ONCE through the shared admission cache at
// registration time; slots bind to it on demand.
#pragma once

#include <cstdint>
#include <string>

#include "codegen/dxo.h"
#include "crypto/sha256.h"

namespace deflection::registry {

using TenantId = std::string;

// Per-tenant intake limits, enforced by TenantRouter::submit_async. Both
// rejections are prompt (an already-resolved future), never blocking: a
// tenant over its limits must not be able to wedge the shared front door.
struct TenantQuota {
  // Bounded per-tenant request queue: submits beyond this many queued
  // (not-yet-dispatched) requests fail with "quota_exceeded".
  std::size_t max_pending = 64;
  // Token-bucket rate limit: sustained requests/second (0 disables). A
  // submit with no token available fails with "rate_limited".
  double requests_per_sec = 0.0;
  // Token-bucket capacity: how many requests may burst above the sustained
  // rate. The bucket starts full.
  double burst = 16.0;
};

// One registered tenant. Immutable after admission: re-registering under
// the same id is an error, so a record's digest always names the exact
// bytes every slot bound to this tenant was admitted with.
struct TenantRecord {
  TenantId id;
  codegen::Dxo service;
  crypto::Digest digest{};           // SHA-256 of the plaintext DXO bytes
  std::uint32_t claimed_policies = 0;  // the binary's claimed PolicySet mask
  TenantQuota quota;
};

// Per-tenant serving counters, rolled up alongside the router totals in
// RouterStats (router.h).
struct TenantStats {
  std::uint64_t submitted = 0;        // requests accepted into the queue
  std::uint64_t served = 0;           // requests answered successfully
  std::uint64_t failed = 0;           // requests answered with an error
  std::uint64_t violations = 0;       // aborts through the violation stub
  std::uint64_t rejected_quota = 0;   // submits refused: queue at max_pending
  std::uint64_t rejected_rate = 0;    // submits refused: token bucket empty
  std::uint64_t rejected_breaker = 0; // submits refused: circuit breaker open
  std::uint64_t retries = 0;          // transparent retry attempts performed
  std::uint64_t deadline_exceeded = 0;  // requests failed on deadline/cost budget
  std::uint64_t breaker_opens = 0;    // times the circuit breaker (re)opened
  std::uint64_t cost = 0;             // VM cost accrued for this tenant
  std::size_t queue_high_water = 0;   // deepest per-tenant backlog observed
  bool draining = false;              // unregister in progress

  // Front-end rollup: sums the counters; high-water takes the max (each
  // shard's backlog is independent, so the deepest observed anywhere is the
  // honest aggregate) and draining ORs (true while any shard drains).
  TenantStats& operator+=(const TenantStats& other) {
    submitted += other.submitted;
    served += other.served;
    failed += other.failed;
    violations += other.violations;
    rejected_quota += other.rejected_quota;
    rejected_rate += other.rejected_rate;
    rejected_breaker += other.rejected_breaker;
    retries += other.retries;
    deadline_exceeded += other.deadline_exceeded;
    breaker_opens += other.breaker_opens;
    cost += other.cost;
    if (other.queue_high_water > queue_high_water)
      queue_high_water = other.queue_high_water;
    draining = draining || other.draining;
    return *this;
  }
};

}  // namespace deflection::registry
