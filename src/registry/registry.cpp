#include "registry/registry.h"

namespace deflection::registry {

TenantRegistry::TenantRegistry(const core::BootstrapConfig& config) {
  admission_ = std::make_unique<core::ServiceWorker>(
      as_, config, /*index=*/0, "registry-admission-", "admission");
}

Result<crypto::Digest> TenantRegistry::admit(const TenantId& id,
                                             const codegen::Dxo& service,
                                             const TenantQuota& quota) {
  using R = Result<crypto::Digest>;
  if (id.empty()) return R::fail("tenant_id", "tenant id must be non-empty");
  std::lock_guard lock(mutex_);
  if (tenants_.count(id) != 0)
    return R::fail("tenant_exists", "tenant '" + id + "' is already registered");
  // Discard the previous admission's session (channel keys, delivered
  // binary) before touching this tenant's bytes.
  if (admission_dirty_) {
    if (auto s = admission_->reset(); !s.is_ok())
      return R::fail(s.code(), admission_->tag(s.message()));
  }
  admission_dirty_ = true;
  Status admitted = admission_->provision(service, /*is_reprovision=*/false,
                                          /*strict_admission=*/true);
  if (!admitted.is_ok())
    return R::fail(admitted.code(), "tenant '" + id + "': " + admitted.message());
  auto record = std::make_shared<TenantRecord>();
  record->id = id;
  record->service = service;
  record->digest = crypto::Sha256::hash(service.serialize());
  record->claimed_policies = service.policies.mask();
  record->quota = quota;
  crypto::Digest digest = record->digest;
  tenants_[id] = std::move(record);
  return digest;
}

Status TenantRegistry::remove(const TenantId& id) {
  std::lock_guard lock(mutex_);
  if (tenants_.erase(id) == 0)
    return Status::fail("unknown_tenant", "tenant '" + id + "' is not registered");
  return Status::ok();
}

std::shared_ptr<const TenantRecord> TenantRegistry::lookup(const TenantId& id) const {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, record] : tenants_) out.push_back(id);
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard lock(mutex_);
  return tenants_.size();
}

}  // namespace deflection::registry
