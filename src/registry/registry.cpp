#include "registry/registry.h"

namespace deflection::registry {

TenantRegistry::TenantRegistry(const core::BootstrapConfig& config) : config_(config) {
  // Eagerly create the first scratch consumer (its enclave build cost is
  // paid at registry construction, not the first admission, matching the
  // previous serial registry).
  AdmissionWorker first;
  first.worker = std::make_unique<core::ServiceWorker>(
      as_, config_, next_worker_index_++, "registry-admission-", "admission");
  idle_workers_.push_back(std::move(first));
}

std::optional<TenantRegistry::AdmissionWorker> TenantRegistry::acquire_admission_worker(
    Status& error) {
  AdmissionWorker out;
  {
    std::lock_guard lock(mutex_);
    if (!idle_workers_.empty()) {
      out = std::move(idle_workers_.back());
      idle_workers_.pop_back();
    } else {
      out.worker = std::make_unique<core::ServiceWorker>(
          as_, config_, next_worker_index_++, "registry-admission-", "admission");
    }
  }
  // Discard the previous admission's session (channel keys, delivered
  // binary) before touching the next tenant's bytes. Runs outside mutex_ —
  // reset rebuilds the enclave.
  if (out.dirty) {
    if (auto s = out.worker->reset(); !s.is_ok()) {
      error = Status::fail(s.code(), out.worker->tag(s.message()));
      return std::nullopt;  // worker dropped: poisoned consumers are not pooled
    }
    out.dirty = false;
  }
  return out;
}

void TenantRegistry::release_admission_worker(AdmissionWorker worker) {
  std::lock_guard lock(mutex_);
  if (idle_workers_.size() < kMaxIdleAdmissionWorkers)
    idle_workers_.push_back(std::move(worker));
}

Result<crypto::Digest> TenantRegistry::admit(const TenantId& id,
                                             const codegen::Dxo& service,
                                             const TenantQuota& quota) {
  using R = Result<crypto::Digest>;
  if (id.empty()) return R::fail("tenant_id", "tenant id must be non-empty");
  {
    // Claim the id with a placeholder so concurrent admissions of the same
    // id fail fast while this one verifies outside the lock.
    std::lock_guard lock(mutex_);
    auto [it, inserted] = tenants_.emplace(id, nullptr);
    (void)it;
    if (!inserted)
      return R::fail("tenant_exists", "tenant '" + id + "' is already registered");
  }
  auto unclaim = [&] {
    std::lock_guard lock(mutex_);
    tenants_.erase(id);
  };

  // Warm fast path: a resident cache verdict for (digest, claimed mask,
  // config) already proves the full verifier passed this exact binary
  // under this exact config — the scratch-enclave provision would only
  // re-derive it. This is what makes a sealed-store or shared-parent boot
  // O(hash + probe) per tenant instead of O(enclave build + load). The
  // serving slot still runs its own begin_admission() at bind time, so a
  // verdict evicted between now and then merely re-verifies (fail closed).
  crypto::Digest binary_digest = crypto::Sha256::hash(service.serialize());
  verifier::VerificationCache* cache = config_.verify_cache.get();
  bool warm = cache != nullptr &&
              cache->warm_probe(binary_digest, service.policies.mask(),
                                config_.verify);
  if (!warm) {
    Status acquire_error = Status::ok();
    auto scratch = acquire_admission_worker(acquire_error);
    if (!scratch.has_value()) {
      unclaim();
      return R::fail(acquire_error.code(), acquire_error.message());
    }
    scratch->dirty = true;
    Status admitted = scratch->worker->provision(service, /*is_reprovision=*/false,
                                                 /*strict_admission=*/true);
    release_admission_worker(std::move(*scratch));
    if (!admitted.is_ok()) {
      unclaim();
      return R::fail(admitted.code(), "tenant '" + id + "': " + admitted.message());
    }
  }
  auto record = std::make_shared<TenantRecord>();
  record->id = id;
  record->service = service;
  record->digest = binary_digest;
  record->claimed_policies = service.policies.mask();
  record->quota = quota;
  crypto::Digest digest = record->digest;
  std::lock_guard lock(mutex_);
  tenants_[id] = std::move(record);
  return digest;
}

Status TenantRegistry::remove(const TenantId& id) {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(id);
  // A placeholder (in-flight admission) is not yet a registered tenant.
  if (it == tenants_.end() || it->second == nullptr)
    return Status::fail("unknown_tenant", "tenant '" + id + "' is not registered");
  tenants_.erase(it);
  return Status::ok();
}

std::shared_ptr<const TenantRecord> TenantRegistry::lookup(const TenantId& id) const {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;  // placeholder -> nullptr
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, record] : tenants_)
    if (record != nullptr) out.push_back(id);
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, record] : tenants_)
    if (record != nullptr) ++n;
  return n;
}

}  // namespace deflection::registry
