#include "registry/registry.h"

namespace deflection::registry {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

TenantRegistry::TenantRegistry(const core::BootstrapConfig& config,
                               const StreamLimits& stream_limits)
    : config_(config), stream_limits_(stream_limits) {
  // Eagerly create the first scratch consumer (its enclave build cost is
  // paid at registry construction, not the first admission, matching the
  // previous serial registry).
  AdmissionWorker first;
  first.worker = std::make_unique<core::ServiceWorker>(
      as_, config_, next_worker_index_++, "registry-admission-", "admission");
  idle_workers_.push_back(std::move(first));
}

TenantRegistry::~TenantRegistry() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
  // streams_ die with the map: each held consumer's enclave scrubs its own
  // in-flight stream (joining its pipeline worker) in its destructor.
}

std::optional<TenantRegistry::AdmissionWorker> TenantRegistry::acquire_admission_worker(
    Status& error) {
  AdmissionWorker out;
  {
    std::lock_guard lock(mutex_);
    if (!idle_workers_.empty()) {
      out = std::move(idle_workers_.back());
      idle_workers_.pop_back();
    } else {
      out.worker = std::make_unique<core::ServiceWorker>(
          as_, config_, next_worker_index_++, "registry-admission-", "admission");
    }
  }
  // Discard the previous admission's session (channel keys, delivered
  // binary) before touching the next tenant's bytes. Runs outside mutex_ —
  // reset rebuilds the enclave.
  if (out.dirty) {
    if (auto s = out.worker->reset(); !s.is_ok()) {
      error = Status::fail(s.code(), out.worker->tag(s.message()));
      return std::nullopt;  // worker dropped: poisoned consumers are not pooled
    }
    out.dirty = false;
  }
  return out;
}

void TenantRegistry::release_admission_worker(AdmissionWorker worker) {
  std::lock_guard lock(mutex_);
  if (idle_workers_.size() < kMaxIdleAdmissionWorkers)
    idle_workers_.push_back(std::move(worker));
}

Result<crypto::Digest> TenantRegistry::admit(const TenantId& id,
                                             const codegen::Dxo& service,
                                             const TenantQuota& quota) {
  using R = Result<crypto::Digest>;
  if (id.empty()) return R::fail("tenant_id", "tenant id must be non-empty");
  {
    // Claim the id with a placeholder so concurrent admissions of the same
    // id fail fast while this one verifies outside the lock.
    std::lock_guard lock(mutex_);
    auto [it, inserted] = tenants_.emplace(id, nullptr);
    (void)it;
    if (!inserted)
      return R::fail("tenant_exists", "tenant '" + id + "' is already registered");
  }
  auto unclaim = [&] {
    std::lock_guard lock(mutex_);
    tenants_.erase(id);
  };

  // Warm fast path: a resident cache verdict for (digest, claimed mask,
  // config) already proves the full verifier passed this exact binary
  // under this exact config — the scratch-enclave provision would only
  // re-derive it. This is what makes a sealed-store or shared-parent boot
  // O(hash + probe) per tenant instead of O(enclave build + load). The
  // serving slot still runs its own begin_admission() at bind time, so a
  // verdict evicted between now and then merely re-verifies (fail closed).
  crypto::Digest binary_digest = crypto::Sha256::hash(service.serialize());
  verifier::VerificationCache* cache = config_.verify_cache.get();
  bool warm = cache != nullptr &&
              cache->warm_probe(binary_digest, service.policies.mask(),
                                config_.verify);
  if (!warm) {
    Status acquire_error = Status::ok();
    auto scratch = acquire_admission_worker(acquire_error);
    if (!scratch.has_value()) {
      unclaim();
      return R::fail(acquire_error.code(), acquire_error.message());
    }
    scratch->dirty = true;
    Status admitted = scratch->worker->provision(service, /*is_reprovision=*/false,
                                                 /*strict_admission=*/true);
    release_admission_worker(std::move(*scratch));
    if (!admitted.is_ok()) {
      unclaim();
      return R::fail(admitted.code(), "tenant '" + id + "': " + admitted.message());
    }
  }
  auto record = std::make_shared<TenantRecord>();
  record->id = id;
  record->service = service;
  record->digest = binary_digest;
  record->claimed_policies = service.policies.mask();
  record->quota = quota;
  crypto::Digest digest = record->digest;
  std::lock_guard lock(mutex_);
  tenants_[id] = std::move(record);
  return digest;
}

Status TenantRegistry::remove(const TenantId& id) {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(id);
  // A placeholder (in-flight admission) is not yet a registered tenant.
  if (it == tenants_.end() || it->second == nullptr)
    return Status::fail("unknown_tenant", "tenant '" + id + "' is not registered");
  tenants_.erase(it);
  return Status::ok();
}

std::shared_ptr<const TenantRecord> TenantRegistry::lookup(const TenantId& id) const {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;  // placeholder -> nullptr
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, record] : tenants_)
    if (record != nullptr) out.push_back(id);
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, record] : tenants_)
    if (record != nullptr) ++n;
  return n;
}

void TenantRegistry::ensure_reaper_locked() {
  if (reaper_.joinable() || stopping_) return;
  reaper_ = std::thread([this] { reaper_main(); });
}

void TenantRegistry::reaper_main() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    reaper_cv_.wait_for(lock,
                        std::chrono::nanoseconds(stream_limits_.reaper_period_ns),
                        [&] { return stopping_; });
    if (stopping_) break;
    // Snapshot candidates under the registry lock (started is immutable
    // after publication; last_activity is an atomic), then abort each one
    // under its own stream lock so an in-flight feed/commit serializes
    // cleanly against the reap.
    auto now = std::chrono::steady_clock::now();
    auto now_ns = steady_now_ns();
    std::vector<std::pair<StreamHandle, std::shared_ptr<RegStream>>> expired;
    for (const auto& [handle, s] : streams_) {
      bool over_deadline =
          stream_limits_.deadline_ns > 0 &&
          now - s->started > std::chrono::nanoseconds(stream_limits_.deadline_ns);
      bool idle = stream_limits_.idle_timeout_ns > 0 &&
                  now_ns - s->last_activity_ns.load(std::memory_order_relaxed) >
                      static_cast<std::int64_t>(stream_limits_.idle_timeout_ns);
      if (over_deadline || idle) expired.push_back({handle, s});
    }
    lock.unlock();
    for (auto& [handle, s] : expired) {
      std::lock_guard stream_lock(s->m);
      if (s->done) continue;  // a racing feed/commit/abort got there first
      terminalize_stream(handle, *s,
                         Status::fail("stream_expired",
                                      "tenant '" + s->id +
                                          "': registration stream missed its deadline"),
                         /*erase_entry=*/false);  // tombstone informs the feeder
    }
    lock.lock();
  }
}

void TenantRegistry::terminalize_stream(StreamHandle handle, RegStream& s,
                                        Status why, bool erase_entry) {
  s.done = true;
  s.terminal = why;
  if (s.worker.worker != nullptr) {
    (void)s.worker.worker->provision_stream_abort();
    s.worker.dirty = true;
    release_admission_worker(std::move(s.worker));
    s.worker = {};
  }
  std::lock_guard lock(mutex_);
  auto claim = tenants_.find(s.id);
  if (claim != tenants_.end() && claim->second == nullptr) tenants_.erase(claim);
  --live_streams_;
  inflight_bytes_ -= s.total;
  if (erase_entry) streams_.erase(handle);
}

Result<TenantRegistry::StreamHandle> TenantRegistry::stream_begin(
    const TenantId& id, const codegen::Dxo& service, const TenantQuota& quota) {
  using R = Result<StreamHandle>;
  if (id.empty()) return R::fail("tenant_id", "tenant id must be non-empty");
  // The sealed size is exactly nonce(12) + plaintext + tag(32); computing
  // it (and the record digest) up front lets the shedding gate refuse an
  // oversized flood before any enclave work happens.
  Bytes plain = service.serialize();
  std::uint64_t total = plain.size() + 44;
  crypto::Digest digest = crypto::Sha256::hash(BytesView(plain));
  StreamHandle handle = 0;
  {
    std::lock_guard lock(mutex_);
    if (live_streams_ >= stream_limits_.max_streams ||
        inflight_bytes_ + total > stream_limits_.max_total_bytes)
      return R::fail("admission_overloaded",
                     "streaming registration limits exceeded; retry later");
    auto [it, inserted] = tenants_.emplace(id, nullptr);
    (void)it;
    if (!inserted)
      return R::fail("tenant_exists", "tenant '" + id + "' is already registered");
    ++live_streams_;
    inflight_bytes_ += total;
    handle = next_stream_++;
  }
  auto rollback = [&] {
    std::lock_guard lock(mutex_);
    tenants_.erase(id);
    --live_streams_;
    inflight_bytes_ -= total;
  };
  Status acquire_error = Status::ok();
  auto scratch = acquire_admission_worker(acquire_error);
  if (!scratch.has_value()) {
    rollback();
    return R::fail(acquire_error.code(), acquire_error.message());
  }
  scratch->dirty = true;
  auto begun = scratch->worker->provision_stream_begin(
      service, stream_limits_.deadline_ns, stream_limits_.idle_timeout_ns);
  if (!begun.is_ok()) {
    release_admission_worker(std::move(*scratch));
    rollback();
    return R::fail(begun.code(), "tenant '" + id + "': " + begun.message());
  }
  auto s = std::make_shared<RegStream>();
  s->id = id;
  s->quota = quota;
  s->service = service;
  s->digest = digest;
  s->total = total;
  s->started = std::chrono::steady_clock::now();
  s->last_activity_ns = steady_now_ns();
  s->worker = std::move(*scratch);
  {
    std::lock_guard lock(mutex_);
    streams_[handle] = std::move(s);
    ensure_reaper_locked();
  }
  return handle;
}

Result<std::uint64_t> TenantRegistry::stream_feed(StreamHandle handle,
                                                  std::uint64_t max_bytes) {
  using R = Result<std::uint64_t>;
  std::shared_ptr<RegStream> s;
  {
    std::lock_guard lock(mutex_);
    auto it = streams_.find(handle);
    if (it == streams_.end())
      return R::fail("unknown_stream", "no such registration stream");
    s = it->second;
  }
  std::lock_guard stream_lock(s->m);
  if (s->done) {
    Status terminal = s->terminal;
    std::lock_guard lock(mutex_);
    streams_.erase(handle);
    return R::fail(terminal.code(), terminal.message());
  }
  auto fed = s->worker.worker->provision_stream_feed(max_bytes);
  if (!fed.is_ok()) {
    Status why = Status::fail(fed.code(), "tenant '" + s->id + "': " + fed.message());
    terminalize_stream(handle, *s, why, /*erase_entry=*/true);
    return R::fail(why.code(), why.message());
  }
  s->last_activity_ns.store(steady_now_ns(), std::memory_order_relaxed);
  return fed;
}

Result<crypto::Digest> TenantRegistry::stream_commit(StreamHandle handle) {
  using R = Result<crypto::Digest>;
  std::shared_ptr<RegStream> s;
  {
    std::lock_guard lock(mutex_);
    auto it = streams_.find(handle);
    if (it == streams_.end())
      return R::fail("unknown_stream", "no such registration stream");
    s = it->second;
  }
  std::lock_guard stream_lock(s->m);
  if (s->done) {
    Status terminal = s->terminal;
    std::lock_guard lock(mutex_);
    streams_.erase(handle);
    return R::fail(terminal.code(), terminal.message());
  }
  auto committed = s->worker.worker->provision_stream_commit();
  if (!committed.is_ok()) {
    Status why =
        Status::fail(committed.code(), "tenant '" + s->id + "': " + committed.message());
    terminalize_stream(handle, *s, why, /*erase_entry=*/true);
    return R::fail(why.code(), why.message());
  }
  auto record = std::make_shared<TenantRecord>();
  record->id = s->id;
  record->service = std::move(s->service);
  record->digest = s->digest;
  record->claimed_policies = record->service.policies.mask();
  record->quota = s->quota;
  s->done = true;
  s->terminal = Status::fail("stream_done", "registration stream already committed");
  s->worker.dirty = true;
  release_admission_worker(std::move(s->worker));
  s->worker = {};
  std::lock_guard lock(mutex_);
  tenants_[s->id] = std::move(record);
  --live_streams_;
  inflight_bytes_ -= s->total;
  streams_.erase(handle);
  return s->digest;
}

Status TenantRegistry::stream_abort(StreamHandle handle) {
  std::shared_ptr<RegStream> s;
  {
    std::lock_guard lock(mutex_);
    auto it = streams_.find(handle);
    if (it == streams_.end()) return Status::ok();  // idempotent
    s = it->second;
  }
  std::lock_guard stream_lock(s->m);
  if (s->done) {
    std::lock_guard lock(mutex_);
    streams_.erase(handle);
    return Status::ok();
  }
  terminalize_stream(handle, *s,
                     Status::fail("stream_aborted",
                                  "tenant '" + s->id + "': registration stream aborted"),
                     /*erase_entry=*/true);
  return Status::ok();
}

std::size_t TenantRegistry::inflight_streams() const {
  std::lock_guard lock(mutex_);
  return live_streams_;
}

std::uint64_t TenantRegistry::inflight_stream_bytes() const {
  std::lock_guard lock(mutex_);
  return inflight_bytes_;
}

}  // namespace deflection::registry
