#include "registry/scheduler.h"

namespace deflection::registry {

Result<std::unique_ptr<EnclaveSlotScheduler>> EnclaveSlotScheduler::create(
    int slots, const Options& options) {
  using R = Result<std::unique_ptr<EnclaveSlotScheduler>>;
  if (slots < 1) return R::fail("fleet_size", "need >= 1 slot");
  std::unique_ptr<EnclaveSlotScheduler> sched(new EnclaveSlotScheduler(options));
  for (int i = 0; i < slots; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->worker = std::make_unique<core::ServiceWorker>(
        sched->as_, options.config, i, "slot-platform-", "slot " + std::to_string(i));
    sched->slots_.push_back(std::move(slot));
  }
  sched->stats_.slots.resize(static_cast<std::size_t>(slots));
  return sched;
}

Result<EnclaveSlotScheduler::Lease> EnclaveSlotScheduler::acquire(
    const TenantId& tenant, const codegen::Dxo& service) {
  using R = Result<Lease>;
  Slot* s = nullptr;
  bool needs_provision = false;
  bool skip_reset = false;
  {
    std::lock_guard lock(mutex_);
    // 1. Affinity: an idle slot already bound to this tenant. Healthy
    //    first (no enclave work at all); a quarantined one otherwise — the
    //    quarantined slot recovers to the SAME tenant it was serving.
    Slot* healthy = nullptr;
    Slot* quarantined = nullptr;
    for (auto& slot : slots_) {
      if (slot->busy || slot->bound != tenant) continue;
      if (slot->health == core::WorkerHealth::Healthy) {
        if (healthy == nullptr || slot->last_used > healthy->last_used)
          healthy = slot.get();
      } else if (quarantined == nullptr) {
        quarantined = slot.get();
      }
    }
    s = healthy != nullptr ? healthy : quarantined;
    // 2. An unbound idle slot (cold bind, nobody displaced).
    if (s == nullptr) {
      for (auto& slot : slots_)
        if (!slot->busy && slot->bound.empty()) {
          s = slot.get();
          break;
        }
    }
    // 3. LRU eviction: the idle slot whose tenant went coldest.
    if (s == nullptr) {
      for (auto& slot : slots_)
        if (!slot->busy && (s == nullptr || slot->last_used < s->last_used))
          s = slot.get();
    }
    if (s == nullptr) return R::fail("no_idle_slot", "every slot is busy");

    const bool rebind = s->bound != tenant;
    const bool recovery = !rebind && s->health == core::WorkerHealth::Quarantined;
    needs_provision = rebind || recovery || !s->worker->provisioned();
    skip_reset = s->pristine;
    if (rebind) {
      ++stats_.binds;
      ++s->counters.binds;
      if (!s->bound.empty()) ++stats_.evictions;
      s->bound = tenant;
    }
    if (recovery) ++stats_.reprovisions;
    s->busy = true;
    s->last_used = ++tick_;
  }
  if (needs_provision) {
    Status st = skip_reset
                    ? s->worker->provision(service, /*is_reprovision=*/false,
                                           options_.provision_fault)
                    : s->worker->reprovision(service, options_.provision_fault);
    std::lock_guard lock(mutex_);
    s->pristine = false;
    if (!st.is_ok()) {
      // The slot stays bound to `tenant` and quarantined: the next acquire
      // for this tenant retries the provision.
      s->busy = false;
      s->health = core::WorkerHealth::Quarantined;
      ++stats_.provision_failures;
      return R::fail(st.code(), s->worker->tag(st.message()));
    }
    s->health = core::WorkerHealth::Healthy;
  }
  return Lease{s->worker->index()};
}

core::ServiceWorker::Response EnclaveSlotScheduler::serve(
    const Lease& lease, const Bytes& payload,
    core::ServiceWorker::ServeMetrics* metrics) {
  if (lease.slot < 0 || lease.slot >= slots())
    return core::ServiceWorker::Response::fail("bad_lease", "lease names no slot");
  Slot& s = *slots_[static_cast<std::size_t>(lease.slot)];
  {
    std::lock_guard lock(mutex_);
    ++s.counters.serves;
  }
  return s.worker->serve(payload, metrics);
}

void EnclaveSlotScheduler::release(const Lease& lease, bool ok) {
  if (lease.slot < 0 || lease.slot >= slots()) return;
  std::lock_guard lock(mutex_);
  Slot& s = *slots_[static_cast<std::size_t>(lease.slot)];
  s.busy = false;
  if (ok) {
    s.health = core::WorkerHealth::Healthy;
  } else {
    // Any error path may leave the enclave holding poisoned service state;
    // never silently reuse it.
    s.health = core::WorkerHealth::Quarantined;
    ++s.counters.quarantines;
  }
}

void EnclaveSlotScheduler::unbind_tenant(const TenantId& tenant) {
  // Claim the tenant's idle slots, reset outside the lock (enclave
  // rebuilds are slow), then hand them back unbound.
  std::vector<Slot*> victims;
  {
    std::lock_guard lock(mutex_);
    for (auto& slot : slots_)
      if (!slot->busy && slot->bound == tenant) {
        slot->busy = true;
        victims.push_back(slot.get());
      }
  }
  for (Slot* s : victims) (void)s->worker->reset();
  {
    std::lock_guard lock(mutex_);
    for (Slot* s : victims) {
      s->bound.clear();
      s->busy = false;
      s->pristine = true;
      s->health = core::WorkerHealth::Healthy;
    }
  }
}

std::size_t EnclaveSlotScheduler::bound_slot_count(const TenantId& tenant) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& slot : slots_)
    if (slot->bound == tenant) ++n;
  return n;
}

TenantId EnclaveSlotScheduler::bound_tenant(int slot) const {
  if (slot < 0 || slot >= slots()) return {};
  std::lock_guard lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)]->bound;
}

core::WorkerHealth EnclaveSlotScheduler::slot_health(int slot) const {
  if (slot < 0 || slot >= slots()) return core::WorkerHealth::Healthy;
  std::lock_guard lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)]->health;
}

SchedulerStats EnclaveSlotScheduler::stats() const {
  std::lock_guard lock(mutex_);
  SchedulerStats snapshot = stats_;
  snapshot.slots.clear();
  for (const auto& slot : slots_) {
    SchedulerStats::SlotStats ss = slot->counters;
    ss.bound = slot->bound;
    ss.health = slot->health;
    snapshot.slots.push_back(std::move(ss));
  }
  return snapshot;
}

}  // namespace deflection::registry
