#include "registry/scheduler.h"

#include <algorithm>

namespace deflection::registry {

Result<std::unique_ptr<EnclaveSlotScheduler>> EnclaveSlotScheduler::create(
    int slots, const Options& options) {
  using R = Result<std::unique_ptr<EnclaveSlotScheduler>>;
  if (slots < 1) return R::fail("fleet_size", "need >= 1 slot");
  std::unique_ptr<EnclaveSlotScheduler> sched(new EnclaveSlotScheduler(options));
  sched->options_.config.fault_plan = options.fault_plan;
  sched->as_.set_fault_plan(options.fault_plan);
  for (int i = 0; i < slots; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->worker = std::make_unique<core::ServiceWorker>(
        sched->as_, sched->options_.config, i, "slot-platform-",
        "slot " + std::to_string(i));
    sched->slots_.push_back(std::move(slot));
  }
  sched->stats_.slots.resize(static_cast<std::size_t>(slots));
  return sched;
}

Result<EnclaveSlotScheduler::Lease> EnclaveSlotScheduler::acquire(
    const TenantId& tenant, const codegen::Dxo& service) {
  using R = Result<Lease>;
  Slot* s = nullptr;
  bool needs_provision = false;
  bool skip_reset = false;
  {
    std::lock_guard lock(mutex_);
    // 1. Affinity: an idle slot already bound to this tenant. Healthy
    //    first (no enclave work at all); a quarantined one otherwise — the
    //    quarantined slot recovers to the SAME tenant it was serving.
    Slot* healthy = nullptr;
    Slot* quarantined = nullptr;
    for (auto& slot : slots_) {
      if (slot->busy || slot->bound != tenant) continue;
      if (slot->health == core::WorkerHealth::Healthy) {
        if (healthy == nullptr || slot->last_used > healthy->last_used)
          healthy = slot.get();
      } else if (quarantined == nullptr) {
        quarantined = slot.get();
      }
    }
    s = healthy != nullptr ? healthy : quarantined;
    // Re-provision backoff: the tenant's quarantined slot failed its last
    // provision recently — fail fast instead of burning another full
    // provision cycle (and never fall through to claim ANOTHER slot, which
    // would let a broken tenant evict healthy tenants one slot at a time).
    if (s != nullptr && s == quarantined && s->provision_fail_streak > 0 &&
        std::chrono::steady_clock::now() < s->retry_after) {
      ++stats_.backoff_rejections;
      return R::fail("provision_backoff",
                     s->worker->tag("re-provision backing off after " +
                                    std::to_string(s->provision_fail_streak) +
                                    " consecutive failures"));
    }
    // 2. An unbound idle slot (cold bind, nobody displaced).
    if (s == nullptr) {
      for (auto& slot : slots_)
        if (!slot->busy && slot->bound.empty()) {
          s = slot.get();
          break;
        }
    }
    // 3. LRU eviction: the idle slot whose tenant went coldest.
    if (s == nullptr) {
      for (auto& slot : slots_)
        if (!slot->busy && (s == nullptr || slot->last_used < s->last_used))
          s = slot.get();
    }
    if (s == nullptr) return R::fail("no_idle_slot", "every slot is busy");

    const bool rebind = s->bound != tenant;
    const bool recovery = !rebind && s->health == core::WorkerHealth::Quarantined;
    needs_provision = rebind || recovery || !s->worker->provisioned();
    skip_reset = s->pristine;
    if (rebind) {
      ++stats_.binds;
      ++s->counters.binds;
      if (!s->bound.empty()) ++stats_.evictions;
      s->bound = tenant;
      // The streak belongs to the previous tenant's binary; a different
      // tenant starts clean.
      s->provision_fail_streak = 0;
      s->retry_after = {};
    }
    if (recovery) ++stats_.reprovisions;
    s->busy = true;
    s->last_used = ++tick_;
  }
  if (needs_provision) {
    Status st = fault_check(options_.fault_plan, fault_site::kSlotBind);
    bool touched_enclave = st.is_ok();
    if (st.is_ok())
      st = skip_reset ? s->worker->provision(service, /*is_reprovision=*/false)
                      : s->worker->reprovision(service);
    std::lock_guard lock(mutex_);
    if (touched_enclave) s->pristine = false;
    if (!st.is_ok()) {
      // The slot stays bound to `tenant` and quarantined: the next acquire
      // for this tenant retries the provision — no sooner than the backoff
      // deadline (base * 2^(streak-1), capped).
      s->busy = false;
      s->health = core::WorkerHealth::Quarantined;
      ++s->provision_fail_streak;
      if (options_.reprovision_backoff_base.count() > 0) {
        std::uint64_t shift = std::min<std::uint64_t>(s->provision_fail_streak - 1, 20);
        auto delay = options_.reprovision_backoff_base * (std::int64_t{1} << shift);
        if (delay > options_.reprovision_backoff_max)
          delay = options_.reprovision_backoff_max;
        s->retry_after = std::chrono::steady_clock::now() + delay;
      }
      ++stats_.provision_failures;
      return R::fail(st.code(), s->worker->tag(st.message()));
    }
    s->health = core::WorkerHealth::Healthy;
    s->provision_fail_streak = 0;
    s->retry_after = {};
  }
  return Lease{s->worker->index()};
}

core::ServiceWorker::Response EnclaveSlotScheduler::serve(
    const Lease& lease, const Bytes& payload,
    core::ServiceWorker::ServeMetrics* metrics, std::uint64_t cost_budget) {
  if (lease.slot < 0 || lease.slot >= slots())
    return core::ServiceWorker::Response::fail("bad_lease", "lease names no slot");
  Slot& s = *slots_[static_cast<std::size_t>(lease.slot)];
  {
    std::lock_guard lock(mutex_);
    ++s.counters.serves;
  }
  return s.worker->serve(payload, metrics, cost_budget);
}

void EnclaveSlotScheduler::release(const Lease& lease, bool ok) {
  if (lease.slot < 0 || lease.slot >= slots()) return;
  std::lock_guard lock(mutex_);
  Slot& s = *slots_[static_cast<std::size_t>(lease.slot)];
  s.busy = false;
  if (ok) {
    s.health = core::WorkerHealth::Healthy;
  } else {
    // Any error path may leave the enclave holding poisoned service state;
    // never silently reuse it.
    s.health = core::WorkerHealth::Quarantined;
    ++s.counters.quarantines;
  }
}

void EnclaveSlotScheduler::unbind_tenant(const TenantId& tenant) {
  // Claim the tenant's idle slots, reset outside the lock (enclave
  // rebuilds are slow), then hand them back unbound.
  std::vector<Slot*> victims;
  {
    std::lock_guard lock(mutex_);
    for (auto& slot : slots_)
      if (!slot->busy && slot->bound == tenant) {
        slot->busy = true;
        victims.push_back(slot.get());
      }
  }
  for (Slot* s : victims) (void)s->worker->reset();
  {
    std::lock_guard lock(mutex_);
    for (Slot* s : victims) {
      s->bound.clear();
      s->busy = false;
      s->pristine = true;
      s->health = core::WorkerHealth::Healthy;
    }
  }
}

std::size_t EnclaveSlotScheduler::bound_slot_count(const TenantId& tenant) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& slot : slots_)
    if (slot->bound == tenant) ++n;
  return n;
}

TenantId EnclaveSlotScheduler::bound_tenant(int slot) const {
  if (slot < 0 || slot >= slots()) return {};
  std::lock_guard lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)]->bound;
}

core::WorkerHealth EnclaveSlotScheduler::slot_health(int slot) const {
  if (slot < 0 || slot >= slots()) return core::WorkerHealth::Healthy;
  std::lock_guard lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)]->health;
}

SchedulerStats EnclaveSlotScheduler::stats() const {
  std::lock_guard lock(mutex_);
  SchedulerStats snapshot = stats_;
  snapshot.slots.clear();
  for (const auto& slot : slots_) {
    SchedulerStats::SlotStats ss = slot->counters;
    ss.bound = slot->bound;
    ss.health = slot->health;
    snapshot.slots.push_back(std::move(ss));
  }
  return snapshot;
}

}  // namespace deflection::registry
