// TenantRegistry: runtime tenant admission through the shared cache.
//
// register/unregister tenants at runtime. Admission is the registry's
// register-time gate: the tenant's sealed binary is delivered to a scratch
// bootstrap consumer wired to the SHARED verifier::VerificationCache and
// verified in full (strict admission — a non-compliant binary fails
// registration with the verifier's error code). The side effect is the
// point: that one full verification fills the cache, so every later slot
// bind and quarantine re-provision for this tenant replays the cached
// verdict and pays only the per-enclave immediate rewrite. One binary, one
// verification — across the whole slot fleet.
//
// Admissions run concurrently: each one borrows a scratch consumer from a
// small free list (created on demand, a few retained), and the registry
// mutex is held only around tenant-map operations. A placeholder entry
// claims the tenant id for the whole admission, so two concurrent admits
// of the same id still resolve to exactly one winner — and when they carry
// the same binary under the shared cache, single-flight admission makes
// one of them verify and the rest reuse its verdict.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/worker.h"
#include "registry/tenant.h"
#include "verifier/cache.h"

namespace deflection::registry {

class TenantRegistry {
 public:
  // `config` is the platform's uniform consumer configuration (one policy
  // floor for every tenant); its verify_cache member must carry the cache
  // shared with the slot fleet for admission to pre-warm it.
  explicit TenantRegistry(const core::BootstrapConfig& config);

  // Admits and records a tenant. Fails with "tenant_exists" for duplicate
  // ids, "tenant_id" for an empty id, or the verifier's own code (e.g.
  // "policy_uncovered") when the binary does not satisfy the platform's
  // required policy set. Returns the binary's digest (the admission-cache
  // key component) on success.
  Result<crypto::Digest> admit(const TenantId& id, const codegen::Dxo& service,
                               const TenantQuota& quota);

  // Forgets a tenant record. Callers owning serving state (TenantRouter)
  // must drain the tenant first; the registry itself holds no queues.
  Status remove(const TenantId& id);

  // The record, or nullptr when unknown. Records are immutable and
  // shared_ptr-held, so a caller may keep serving from a record that was
  // concurrently removed (drain semantics are the router's job).
  std::shared_ptr<const TenantRecord> lookup(const TenantId& id) const;

  std::vector<TenantId> ids() const;
  std::size_t size() const;

 private:
  struct AdmissionWorker {
    std::unique_ptr<core::ServiceWorker> worker;
    // A used consumer holds the previous tenant's binary and channel keys;
    // it is reset on the next acquire, before touching new bytes.
    bool dirty = false;
  };
  // At most this many idle scratch consumers are retained; extra ones
  // created under an admission burst are dropped when released.
  static constexpr std::size_t kMaxIdleAdmissionWorkers = 4;

  // Borrows a scratch consumer (resetting a dirty one), creating a fresh
  // one when the free list is empty. Returns nullopt if the reset fails,
  // with the failure in `error`.
  std::optional<AdmissionWorker> acquire_admission_worker(Status& error);
  void release_admission_worker(AdmissionWorker worker);

  mutable std::mutex mutex_;
  core::BootstrapConfig config_;
  sgx::AttestationService as_;
  // Idle scratch consumers for register-time admission (guarded by mutex_;
  // provisioning itself runs outside the lock).
  std::vector<AdmissionWorker> idle_workers_;
  int next_worker_index_ = 0;  // distinct simulated platform per consumer
  // Tenant records; a nullptr value is a placeholder claiming the id while
  // its admission is in flight (lookup/ids/size treat it as absent, a
  // concurrent admit of the same id fails with "tenant_exists").
  std::map<TenantId, std::shared_ptr<const TenantRecord>> tenants_;
};

}  // namespace deflection::registry
