// TenantRegistry: runtime tenant admission through the shared cache.
//
// register/unregister tenants at runtime. Admission is the registry's
// register-time gate: the tenant's sealed binary is delivered to a scratch
// bootstrap consumer wired to the SHARED verifier::VerificationCache and
// verified in full (strict admission — a non-compliant binary fails
// registration with the verifier's error code). The side effect is the
// point: that one full verification fills the cache, so every later slot
// bind and quarantine re-provision for this tenant replays the cached
// verdict and pays only the per-enclave immediate rewrite. One binary, one
// verification — across the whole slot fleet.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/worker.h"
#include "registry/tenant.h"
#include "verifier/cache.h"

namespace deflection::registry {

class TenantRegistry {
 public:
  // `config` is the platform's uniform consumer configuration (one policy
  // floor for every tenant); its verify_cache member must carry the cache
  // shared with the slot fleet for admission to pre-warm it.
  explicit TenantRegistry(const core::BootstrapConfig& config);

  // Admits and records a tenant. Fails with "tenant_exists" for duplicate
  // ids, "tenant_id" for an empty id, or the verifier's own code (e.g.
  // "policy_uncovered") when the binary does not satisfy the platform's
  // required policy set. Returns the binary's digest (the admission-cache
  // key component) on success.
  Result<crypto::Digest> admit(const TenantId& id, const codegen::Dxo& service,
                               const TenantQuota& quota);

  // Forgets a tenant record. Callers owning serving state (TenantRouter)
  // must drain the tenant first; the registry itself holds no queues.
  Status remove(const TenantId& id);

  // The record, or nullptr when unknown. Records are immutable and
  // shared_ptr-held, so a caller may keep serving from a record that was
  // concurrently removed (drain semantics are the router's job).
  std::shared_ptr<const TenantRecord> lookup(const TenantId& id) const;

  std::vector<TenantId> ids() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  sgx::AttestationService as_;
  // Scratch consumer used serially (under mutex_) for register-time
  // admission; reset between tenants so no tenant's binary or channel keys
  // outlive its own admission.
  std::unique_ptr<core::ServiceWorker> admission_;
  bool admission_dirty_ = false;
  std::map<TenantId, std::shared_ptr<const TenantRecord>> tenants_;
};

}  // namespace deflection::registry
