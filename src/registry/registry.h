// TenantRegistry: runtime tenant admission through the shared cache.
//
// register/unregister tenants at runtime. Admission is the registry's
// register-time gate: the tenant's sealed binary is delivered to a scratch
// bootstrap consumer wired to the SHARED verifier::VerificationCache and
// verified in full (strict admission — a non-compliant binary fails
// registration with the verifier's error code). The side effect is the
// point: that one full verification fills the cache, so every later slot
// bind and quarantine re-provision for this tenant replays the cached
// verdict and pays only the per-enclave immediate rewrite. One binary, one
// verification — across the whole slot fleet.
//
// Admissions run concurrently: each one borrows a scratch consumer from a
// small free list (created on demand, a few retained), and the registry
// mutex is held only around tenant-map operations. A placeholder entry
// claims the tenant id for the whole admission, so two concurrent admits
// of the same id still resolve to exactly one winner — and when they carry
// the same binary under the shared cache, single-flight admission makes
// one of them verify and the rest reuse its verdict.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/worker.h"
#include "registry/tenant.h"
#include "verifier/cache.h"

namespace deflection::registry {

// Bounds on streaming registrations (stream_begin/feed/commit). Shedding is
// fail-fast: a begin that would exceed max_streams or max_total_bytes is
// refused immediately with "admission_overloaded" — never queued — so a
// flood of large deliveries cannot wedge the control plane. Deadlines are
// enforced twice: lazily by the enclave at every chunk/commit, and
// asynchronously by the registry's reaper thread, which aborts expired
// streams, scrubs their scratch consumers and releases their tenant claims
// even when the feeder has gone silent.
struct StreamLimits {
  std::size_t max_streams = 4;                  // concurrent registrations
  std::uint64_t max_total_bytes = 64ull << 20;  // summed declared sealed sizes
  std::uint64_t deadline_ns = 30'000'000'000ull;      // begin -> commit budget
  std::uint64_t idle_timeout_ns = 10'000'000'000ull;  // max gap between feeds
  std::uint64_t reaper_period_ns = 50'000'000ull;     // expiry scan period
};

class TenantRegistry {
 public:
  // `config` is the platform's uniform consumer configuration (one policy
  // floor for every tenant); its verify_cache member must carry the cache
  // shared with the slot fleet for admission to pre-warm it.
  explicit TenantRegistry(const core::BootstrapConfig& config,
                          const StreamLimits& stream_limits = {});
  // Stops the stream reaper and drops every in-flight stream (each scratch
  // consumer scrubs its own enclave stream on destruction).
  ~TenantRegistry();

  // Admits and records a tenant. Fails with "tenant_exists" for duplicate
  // ids, "tenant_id" for an empty id, or the verifier's own code (e.g.
  // "policy_uncovered") when the binary does not satisfy the platform's
  // required policy set. Returns the binary's digest (the admission-cache
  // key component) on success.
  Result<crypto::Digest> admit(const TenantId& id, const codegen::Dxo& service,
                               const TenantQuota& quota);

  // Forgets a tenant record. Callers owning serving state (TenantRouter)
  // must drain the tenant first; the registry itself holds no queues.
  Status remove(const TenantId& id);

  // The record, or nullptr when unknown. Records are immutable and
  // shared_ptr-held, so a caller may keep serving from a record that was
  // concurrently removed (drain semantics are the router's job).
  std::shared_ptr<const TenantRecord> lookup(const TenantId& id) const;

  std::vector<TenantId> ids() const;
  std::size_t size() const;

  // --- Streaming registration ---
  // Chunked admission for large binaries: begin claims the tenant id (a
  // placeholder, like admit()) and opens a chunked delivery on a held
  // scratch consumer; feed paces up to max_bytes of the sealed payload and
  // returns the bytes still undelivered; commit completes delivery +
  // verification (pipelined inside the enclave, coalesced through the
  // shared cache) and installs the tenant record. Same-binary streams
  // coalesce exactly like concurrent admit()s: one enclave leads the
  // verification, the rest adopt its verdict at commit.
  //
  // Every stream resolves — commit, abort, or reaper expiry; an expired or
  // failed stream releases its consumer and tenant claim immediately and
  // leaves a tombstone, so the feeder's next touch reports the terminal
  // error (e.g. "stream_expired") and clears it.
  using StreamHandle = std::uint64_t;
  Result<StreamHandle> stream_begin(const TenantId& id, const codegen::Dxo& service,
                                    const TenantQuota& quota);
  Result<std::uint64_t> stream_feed(StreamHandle handle, std::uint64_t max_bytes);
  Result<crypto::Digest> stream_commit(StreamHandle handle);
  Status stream_abort(StreamHandle handle);  // idempotent

  // Introspection: live (non-terminal) streams and their summed declared
  // sealed sizes — the values the shedding bounds compare against.
  std::size_t inflight_streams() const;
  std::uint64_t inflight_stream_bytes() const;

 private:
  struct AdmissionWorker {
    std::unique_ptr<core::ServiceWorker> worker;
    // A used consumer holds the previous tenant's binary and channel keys;
    // it is reset on the next acquire, before touching new bytes.
    bool dirty = false;
  };
  // At most this many idle scratch consumers are retained; extra ones
  // created under an admission burst are dropped when released.
  static constexpr std::size_t kMaxIdleAdmissionWorkers = 4;

  // Borrows a scratch consumer (resetting a dirty one), creating a fresh
  // one when the free list is empty. Returns nullopt if the reset fails,
  // with the failure in `error`.
  std::optional<AdmissionWorker> acquire_admission_worker(Status& error);
  void release_admission_worker(AdmissionWorker worker);

  // One in-flight streaming registration. Locking: mutex_ (registry) is
  // never held while acquiring a stream's m; terminal transitions take m
  // first, then mutex_ for the accounting — feed/commit/abort and the
  // reaper all follow that order, so a reaper abort and an in-flight feed
  // serialize cleanly on m.
  struct RegStream {
    TenantId id;
    TenantQuota quota;
    codegen::Dxo service;
    crypto::Digest digest{};
    std::uint64_t total = 0;  // declared sealed size (shedding accounting)
    std::chrono::steady_clock::time_point started;
    std::atomic<std::int64_t> last_activity_ns{0};  // steady-clock nanos
    std::mutex m;
    AdmissionWorker worker;  // under m; moved out on terminalization
    bool done = false;       // under m: terminal tombstone
    Status terminal;         // under m: why (expired / aborted / failed)
  };

  // Marks `s` terminal (caller holds s->m), aborting its enclave stream,
  // releasing its consumer, and dropping its tenant claim + accounting.
  // The map entry survives as a tombstone unless erase_entry is set.
  void terminalize_stream(StreamHandle handle, RegStream& s, Status why,
                          bool erase_entry);
  void reaper_main();
  void ensure_reaper_locked();

  mutable std::mutex mutex_;
  core::BootstrapConfig config_;
  sgx::AttestationService as_;
  // Idle scratch consumers for register-time admission (guarded by mutex_;
  // provisioning itself runs outside the lock).
  std::vector<AdmissionWorker> idle_workers_;
  int next_worker_index_ = 0;  // distinct simulated platform per consumer
  // Tenant records; a nullptr value is a placeholder claiming the id while
  // its admission is in flight (lookup/ids/size treat it as absent, a
  // concurrent admit of the same id fails with "tenant_exists").
  std::map<TenantId, std::shared_ptr<const TenantRecord>> tenants_;

  // Streaming registrations (guarded by mutex_; per-stream state by s->m).
  StreamLimits stream_limits_;
  std::map<StreamHandle, std::shared_ptr<RegStream>> streams_;
  StreamHandle next_stream_ = 1;
  std::size_t live_streams_ = 0;        // non-terminal streams
  std::uint64_t inflight_bytes_ = 0;    // their summed declared totals
  std::thread reaper_;                  // lazy; started at first stream_begin
  std::condition_variable reaper_cv_;
  bool stopping_ = false;
};

}  // namespace deflection::registry
