// DX64 decoder — the disassembling primitive of the in-enclave verifier.
//
// This is the analogue of the paper's "clipped Capstone": a minimal,
// table-driven decoder that the just-enough recursive-descent disassembler
// (src/verifier/disasm.*) is built on. It is part of the trusted computing
// base, so it rejects malformed bytes instead of guessing.
#pragma once

#include "isa/isa.h"
#include "support/bytes.h"
#include "support/result.h"

namespace deflection::isa {

// Decodes one instruction at `offset` within `text`. `base_addr` is the
// virtual address of text[0]; the decoded Instr::addr is base_addr+offset.
Result<Instr> decode_one(BytesView text, std::size_t offset, std::uint64_t base_addr);

// Linear sweep decode of a whole buffer (used by tests and the printer; the
// verifier proper uses recursive descent instead).
Result<std::vector<Instr>> decode_all(BytesView text, std::uint64_t base_addr);

}  // namespace deflection::isa
