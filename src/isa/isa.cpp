#include "isa/isa.h"

#include <array>
#include <sstream>

namespace deflection::isa {

const char* reg_name(Reg r) {
  static const char* kNames[kNumRegs] = {
      "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
  };
  return kNames[static_cast<int>(r) & 0xF];
}

const char* cond_name(Cond c) {
  static const char* kNames[kNumConds] = {"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae"};
  return kNames[static_cast<int>(c) % kNumConds];
}

const char* op_name(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::Hlt: return "hlt";
    case Op::MovRR: return "mov";
    case Op::MovRI: return "mov";
    case Op::Load: return "load";
    case Op::Load8: return "load8";
    case Op::Store: return "store";
    case Op::Store8: return "store8";
    case Op::StoreI: return "storei";
    case Op::Lea: return "lea";
    case Op::AddRR: case Op::AddRI: return "add";
    case Op::SubRR: case Op::SubRI: return "sub";
    case Op::ImulRR: case Op::ImulRI: return "imul";
    case Op::IdivRR: return "idiv";
    case Op::IremRR: return "irem";
    case Op::AndRR: case Op::AndRI: return "and";
    case Op::OrRR: case Op::OrRI: return "or";
    case Op::XorRR: case Op::XorRI: return "xor";
    case Op::ShlRR: case Op::ShlRI: return "shl";
    case Op::ShrRR: case Op::ShrRI: return "shr";
    case Op::SarRR: case Op::SarRI: return "sar";
    case Op::NotR: return "not";
    case Op::NegR: return "neg";
    case Op::CmpRR: case Op::CmpRI: return "cmp";
    case Op::TestRR: return "test";
    case Op::Jmp: return "jmp";
    case Op::Jcc: return "jcc";
    case Op::JmpInd: return "jmp*";
    case Op::Call: return "call";
    case Op::CallInd: return "call*";
    case Op::Ret: return "ret";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::PushI: return "push";
    case Op::FAddRR: return "fadd";
    case Op::FSubRR: return "fsub";
    case Op::FMulRR: return "fmul";
    case Op::FDivRR: return "fdiv";
    case Op::FCmpRR: return "fcmp";
    case Op::CvtI2F: return "cvti2f";
    case Op::CvtF2I: return "cvtf2i";
    case Op::FNegR: return "fneg";
    case Op::FAbsR: return "fabs";
    case Op::FSqrtR: return "fsqrt";
    case Op::FSinR: return "fsin";
    case Op::FCosR: return "fcos";
    case Op::FExpR: return "fexp";
    case Op::FLogR: return "flog";
    case Op::Ocall: return "ocall";
    default: return "?";
  }
}

Layout op_layout(Op op) {
  switch (op) {
    case Op::Nop:
    case Op::Hlt:
    case Op::Ret:
      return Layout::None;
    case Op::NotR:
    case Op::NegR:
    case Op::FNegR:
    case Op::FAbsR:
    case Op::FSqrtR:
    case Op::FSinR:
    case Op::FCosR:
    case Op::FExpR:
    case Op::FLogR:
    case Op::JmpInd:
    case Op::CallInd:
    case Op::Push:
    case Op::Pop:
      return Layout::R;
    case Op::MovRR:
    case Op::AddRR:
    case Op::SubRR:
    case Op::ImulRR:
    case Op::IdivRR:
    case Op::IremRR:
    case Op::AndRR:
    case Op::OrRR:
    case Op::XorRR:
    case Op::ShlRR:
    case Op::ShrRR:
    case Op::SarRR:
    case Op::CmpRR:
    case Op::TestRR:
    case Op::FAddRR:
    case Op::FSubRR:
    case Op::FMulRR:
    case Op::FDivRR:
    case Op::FCmpRR:
    case Op::CvtI2F:
    case Op::CvtF2I:
      return Layout::RR;
    case Op::AddRI:
    case Op::SubRI:
    case Op::ImulRI:
    case Op::AndRI:
    case Op::OrRI:
    case Op::XorRI:
    case Op::ShlRI:
    case Op::ShrRI:
    case Op::SarRI:
    case Op::CmpRI:
      return Layout::RI32;
    case Op::MovRI:
      return Layout::RI64;
    case Op::Load:
    case Op::Load8:
    case Op::Lea:
      return Layout::RM;
    case Op::Store:
    case Op::Store8:
      return Layout::MR;
    case Op::StoreI:
      return Layout::MI32;
    case Op::PushI:
      return Layout::I32;
    case Op::Ocall:
      return Layout::I8;
    case Op::Jmp:
    case Op::Call:
      return Layout::Rel32;
    case Op::Jcc:
      return Layout::CondRel32;
    default:
      return Layout::None;
  }
}

std::uint32_t layout_length(Layout layout) {
  switch (layout) {
    case Layout::None: return 1;
    case Layout::R: return 2;
    case Layout::RR: return 2;
    case Layout::RI32: return 6;
    case Layout::RI64: return 10;
    case Layout::RM: return 8;   // op + reg + mode + regs + disp32
    case Layout::MR: return 8;
    case Layout::MI32: return 11;  // op + mode + regs + disp32 + imm32
    case Layout::I32: return 5;
    case Layout::I8: return 2;
    case Layout::Rel32: return 5;
    case Layout::CondRel32: return 6;
  }
  return 1;
}

bool op_writes_reg(Op op, Reg rd, Reg r) {
  switch (op_layout(op)) {
    case Layout::RR:
      // Compare/test read rd but do not write it.
      if (op == Op::CmpRR || op == Op::TestRR || op == Op::FCmpRR) return false;
      return rd == r;
    case Layout::RI32:
      if (op == Op::CmpRI) return false;
      return rd == r;
    case Layout::RI64:
      return rd == r;
    case Layout::RM:
      return rd == r;  // load/lea into the register
    case Layout::R:
      // Pop rd is an explicit rewrite of rd; unary ALU ops likewise.
      if (op == Op::JmpInd || op == Op::CallInd || op == Op::Push) return false;
      return rd == r;
    case Layout::I8:
      // The OCall result clobbers RAX.
      return op == Op::Ocall && r == Reg::RAX;
    default:
      return false;
  }
}

bool Instr::writes_rsp_explicitly() const { return op_writes_reg(op, rd, Reg::RSP); }

std::string mem_to_string(const Mem& mem) {
  std::ostringstream os;
  os << "[";
  bool need_plus = false;
  if (mem.has_base) {
    os << reg_name(mem.base);
    need_plus = true;
  }
  if (mem.has_index) {
    if (need_plus) os << "+";
    os << reg_name(mem.index) << "*" << (1 << mem.scale_log2);
    need_plus = true;
  }
  if (mem.disp != 0 || !need_plus) {
    if (need_plus && mem.disp >= 0) os << "+";
    os << mem.disp;
  }
  os << "]";
  return os.str();
}

std::string Instr::to_string() const {
  std::ostringstream os;
  os << op_name(op);
  switch (layout()) {
    case Layout::None:
      break;
    case Layout::R:
      os << " " << reg_name(rd);
      break;
    case Layout::RR:
      os << " " << reg_name(rd) << ", " << reg_name(rs);
      break;
    case Layout::RI32:
    case Layout::RI64:
      os << " " << reg_name(rd) << ", " << imm;
      break;
    case Layout::RM:
      os << " " << reg_name(rd) << ", " << mem_to_string(mem);
      break;
    case Layout::MR:
      os << " " << mem_to_string(mem) << ", " << reg_name(rs);
      break;
    case Layout::MI32:
      os << " " << mem_to_string(mem) << ", " << imm;
      break;
    case Layout::I32:
    case Layout::I8:
      os << " " << imm;
      break;
    case Layout::Rel32:
      os << " " << branch_target();
      break;
    case Layout::CondRel32:
      os << cond_name(cond) << " " << branch_target();
      break;
  }
  return os.str();
}

}  // namespace deflection::isa
