// DX64: a compact x86-64-modelled instruction set.
//
// The paper's policies are defined over x86-64 instruction *classes*
// (instructions that may store, that write RSP, indirect branches, RET) and
// are enforced by a clipped Capstone disassembler inside the enclave. DX64
// reproduces those classes faithfully — including SIB-style memory operands
// (base + index*scale + disp) — in a byte encoding that a just-enough
// recursive-descent disassembler can decode with a per-opcode layout table.
//
// Register conventions (mirroring the prototype's code generator):
//   - RSP is the stack pointer; pushes/pops/call/ret adjust it implicitly.
//   - R14/R15 are reserved annotation scratch registers: the (untrusted)
//     code producer never allocates them for program values, so security
//     annotations can use them without save/restore. The in-enclave
//     verifier does NOT trust this convention; it only checks annotation
//     shapes, which are written purely in terms of R14/R15.
//   - Call arguments are passed in RDI, RSI, RDX, RCX, R8, R9; the return
//     value is in RAX.
#pragma once

#include <cstdint>
#include <string>

namespace deflection::isa {

enum class Reg : std::uint8_t {
  RAX = 0,
  RBX,
  RCX,
  RDX,
  RSI,
  RDI,
  RBP,
  RSP,
  R8,
  R9,
  R10,
  R11,
  R12,
  R13,
  R14,
  R15,
};
constexpr int kNumRegs = 16;

// Annotation scratch registers (reserved by the producer's register
// allocator; see file comment).
constexpr Reg kScratch0 = Reg::R14;
constexpr Reg kScratch1 = Reg::R15;

const char* reg_name(Reg r);

enum class Cond : std::uint8_t {
  E = 0,  // equal / zero
  NE,
  L,   // signed less
  LE,
  G,   // signed greater
  GE,
  B,   // unsigned below
  BE,
  A,   // unsigned above
  AE,
};
constexpr int kNumConds = 10;

const char* cond_name(Cond c);

enum class Op : std::uint8_t {
  Nop = 0,
  Hlt,       // terminate enclave run; exit code in RAX

  MovRR,     // rd = rs
  MovRI,     // rd = imm64

  Load,      // rd = *(i64*)mem
  Load8,     // rd = *(u8*)mem (zero-extended)
  Store,     // *(i64*)mem = rs
  Store8,    // *(u8*)mem = (u8)rs
  StoreI,    // *(i64*)mem = sext(imm32)
  Lea,       // rd = effective address of mem

  AddRR, AddRI,
  SubRR, SubRI,
  ImulRR, ImulRI,
  IdivRR,    // rd = rd / rs (signed; traps on rs==0 or overflow)
  IremRR,    // rd = rd % rs
  AndRR, AndRI,
  OrRR, OrRI,
  XorRR, XorRI,
  ShlRR, ShlRI,
  ShrRR, ShrRI,   // logical
  SarRR, SarRI,   // arithmetic
  NotR,
  NegR,

  CmpRR, CmpRI,   // set flags from rd - operand (signed + unsigned views)
  TestRR,         // set flags from rd & rs

  Jmp,       // rel32
  Jcc,       // cond, rel32
  JmpInd,    // jump to address in rd
  Call,      // rel32; pushes return address
  CallInd,   // call address in rd
  Ret,

  Push,      // push rd
  Pop,       // pop into rd
  PushI,     // push sext(imm32)

  // Floating point: GPRs hold raw IEEE-754 double bits. Models the SSE2
  // scalar-double subset the prototype's compiled programs use.
  FAddRR, FSubRR, FMulRR, FDivRR,
  FCmpRR,    // ordered compare; sets flags so L/LE/G/GE/E/NE apply
  CvtI2F,    // rd = double(int64(rs)) bits
  CvtF2I,    // rd = int64(trunc(double(rs bits)))
  FNegR, FAbsR,
  // Transcendentals model the statically linked libm of the prototype's
  // relocatable objects (needed by the Fourier / neural-net workloads).
  FSqrtR, FSinR, FCosR, FExpR, FLogR,

  Ocall,     // imm8 = ocall number; args RDI/RSI/RDX, result RAX

  kOpCount,
};

const char* op_name(Op op);

// Operand layout of each opcode; drives both the encoder and the
// recursive-descent decoder. Every layout has a fixed instruction length.
enum class Layout : std::uint8_t {
  None,       // [op]
  R,          // [op][rd]
  RR,         // [op][rd<<4|rs]
  RI32,       // [op][rd][imm32]
  RI64,       // [op][rd][imm64]
  RM,         // [op][rd][mem:6]   (Load/Load8/Lea: rd <- mem)
  MR,         // [op][rs][mem:6]   (Store/Store8: mem <- rs)
  MI32,       // [op][mem:6][imm32] (StoreI)
  I32,        // [op][imm32]
  I8,         // [op][imm8]
  Rel32,      // [op][rel32]
  CondRel32,  // [op][cond][rel32]
};

Layout op_layout(Op op);
std::uint32_t layout_length(Layout layout);
inline std::uint32_t op_length(Op op) { return layout_length(op_layout(op)); }

// True when an instruction with this opcode and rd operand overwrites
// general-purpose register `r`. Only explicit destination writes count:
// the implicit RSP adjustment of Push/Pop/Call/Ret does not (mirroring
// writes_rsp_explicitly, which is this predicate at r == RSP). Shared by
// the producer's optimization passes and the verifier's run-guard filler
// rules, so both sides agree on what can clobber a guarded base register.
bool op_writes_reg(Op op, Reg rd, Reg r);

// SIB-style memory operand: [base + index*scale + disp32].
struct Mem {
  bool has_base = false;
  bool has_index = false;
  Reg base = Reg::RAX;
  Reg index = Reg::RAX;
  std::uint8_t scale_log2 = 0;  // scale = 1 << scale_log2 (1,2,4,8)
  std::int32_t disp = 0;

  static Mem abs(std::int32_t disp) { return Mem{false, false, Reg::RAX, Reg::RAX, 0, disp}; }
  static Mem base_disp(Reg base, std::int32_t disp = 0) {
    return Mem{true, false, base, Reg::RAX, 0, disp};
  }
  static Mem base_index(Reg base, Reg index, std::uint8_t scale_log2, std::int32_t disp = 0) {
    return Mem{true, true, base, index, scale_log2, disp};
  }

  bool operator==(const Mem&) const = default;
};

// A fully decoded instruction.
struct Instr {
  Op op = Op::Nop;
  Reg rd = Reg::RAX;
  Reg rs = Reg::RAX;
  Cond cond = Cond::E;
  Mem mem;
  std::int64_t imm = 0;   // imm64/imm32(sext)/imm8/rel32 depending on layout
  std::uint64_t addr = 0; // address the instruction was decoded at
  std::uint32_t length = 0;

  Layout layout() const { return op_layout(op); }

  // ---- Instruction classes the security policies are defined over ----

  // Writes to memory (the paper's MachineInstr::mayStore()).
  bool may_store() const {
    return op == Op::Store || op == Op::Store8 || op == Op::StoreI;
  }
  // Explicitly writes the stack pointer (paper policy P2 trigger). Push/
  // Pop/Call/Ret adjust RSP implicitly and are covered by guard pages.
  bool writes_rsp_explicitly() const;
  // Explicitly overwrites general-purpose register `r` (see op_writes_reg).
  bool writes_reg(Reg r) const { return op_writes_reg(op, rd, r); }
  bool is_indirect_branch() const { return op == Op::JmpInd || op == Op::CallInd; }
  bool is_ret() const { return op == Op::Ret; }
  bool is_call() const { return op == Op::Call || op == Op::CallInd; }
  bool is_direct_branch() const { return op == Op::Jmp || op == Op::Jcc || op == Op::Call; }
  // Control never falls through to the next instruction.
  bool ends_flow() const {
    return op == Op::Jmp || op == Op::JmpInd || op == Op::Ret || op == Op::Hlt;
  }
  // Target of a direct branch (valid for Jmp/Jcc/Call once decoded).
  std::uint64_t branch_target() const { return addr + length + static_cast<std::uint64_t>(imm); }

  std::string to_string() const;
};

std::string mem_to_string(const Mem& mem);

}  // namespace deflection::isa
