// DX64 assembler: the producer-side program representation that the code
// generator emits into and the instrumentation passes rewrite, plus the
// two-pass encoder that turns it into bytes, a symbol table and Abs64
// relocation records for the DXO object format.
//
// Everything in this file runs OUTSIDE the enclave (it is part of the
// untrusted code producer); the trusted consumer only ever sees the encoded
// bytes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "support/bytes.h"
#include "support/result.h"

namespace deflection::isa {

// One assembly-level instruction, possibly carrying symbolic operands that
// the encoder resolves (branch label) or that the DXO linker resolves at
// load time (Abs64 relocation against a data/text symbol).
struct AsmInstr {
  Op op = Op::Nop;
  Reg rd = Reg::RAX;
  Reg rs = Reg::RAX;
  Cond cond = Cond::E;
  Mem mem;
  std::int64_t imm = 0;
  std::string target;        // branch label for Rel32/CondRel32 layouts
  std::string reloc_symbol;  // MovRI only: symbol address + imm(addend) at load
  bool annotation = false;   // producer bookkeeping: inserted by a policy pass
  // Pattern group id (> 0): instructions forming one indivisible annotation
  // pattern (guard + guarded operation). Later passes must not insert
  // instructions inside a group. Producer bookkeeping only — the verifier
  // rediscovers groups by shape.
  int group = 0;
};

struct AsmItem {
  enum class Kind { Label, Instr };
  Kind kind = Kind::Instr;
  std::string label;  // Kind::Label
  AsmInstr instr;     // Kind::Instr
};

// A linear assembly program (labels interleaved with instructions), with
// convenience emitters used by both the code generator and the policy
// instrumentation passes.
class AsmProgram {
 public:
  std::vector<AsmItem>& items() { return items_; }
  const std::vector<AsmItem>& items() const { return items_; }

  void label(const std::string& name) {
    items_.push_back(AsmItem{AsmItem::Kind::Label, name, {}});
  }
  AsmInstr& emit(AsmInstr ins) {
    items_.push_back(AsmItem{AsmItem::Kind::Instr, {}, std::move(ins)});
    return items_.back().instr;
  }

  // ---- Shorthand emitters ----
  void op0(Op op) { emit({.op = op}); }
  void op_r(Op op, Reg rd) { emit({.op = op, .rd = rd}); }
  void op_rr(Op op, Reg rd, Reg rs) { emit({.op = op, .rd = rd, .rs = rs}); }
  void op_ri(Op op, Reg rd, std::int64_t imm) { emit({.op = op, .rd = rd, .imm = imm}); }
  void movri(Reg rd, std::int64_t imm) { op_ri(Op::MovRI, rd, imm); }
  void movri_sym(Reg rd, const std::string& symbol, std::int64_t addend = 0) {
    emit({.op = Op::MovRI, .rd = rd, .imm = addend, .reloc_symbol = symbol});
  }
  void movrr(Reg rd, Reg rs) { op_rr(Op::MovRR, rd, rs); }
  void load(Reg rd, Mem mem) { emit({.op = Op::Load, .rd = rd, .mem = mem}); }
  void load8(Reg rd, Mem mem) { emit({.op = Op::Load8, .rd = rd, .mem = mem}); }
  void lea(Reg rd, Mem mem) { emit({.op = Op::Lea, .rd = rd, .mem = mem}); }
  void store(Mem mem, Reg rs) { emit({.op = Op::Store, .rs = rs, .mem = mem}); }
  void store8(Mem mem, Reg rs) { emit({.op = Op::Store8, .rs = rs, .mem = mem}); }
  void storei(Mem mem, std::int32_t imm) { emit({.op = Op::StoreI, .mem = mem, .imm = imm}); }
  void push(Reg r) { op_r(Op::Push, r); }
  void pop(Reg r) { op_r(Op::Pop, r); }
  void jmp(const std::string& label) { emit({.op = Op::Jmp, .target = label}); }
  void jcc(Cond cond, const std::string& label) {
    emit({.op = Op::Jcc, .cond = cond, .target = label});
  }
  void call(const std::string& label) { emit({.op = Op::Call, .target = label}); }
  void callind(Reg r) { op_r(Op::CallInd, r); }
  void jmpind(Reg r) { op_r(Op::JmpInd, r); }
  void ret() { op0(Op::Ret); }
  void hlt() { op0(Op::Hlt); }
  void ocall(std::uint8_t number) { emit({.op = Op::Ocall, .imm = number}); }

  std::string to_string() const;

 private:
  std::vector<AsmItem> items_;
};

// Encoded output of the assembler.
struct Encoded {
  Bytes text;
  std::map<std::string, std::uint64_t> labels;  // label -> offset in text
  struct Reloc {
    std::uint64_t offset;  // offset of the imm64 field inside text
    std::string symbol;
    std::int64_t addend;
  };
  std::vector<Reloc> relocs;
};

// Two-pass encoder. Fails on duplicate/undefined labels or rel32 overflow.
Result<Encoded> assemble(const AsmProgram& program);

// Encodes a single instruction (no symbolic operands) — used by tests and
// by the verifier's pattern-matching tests to build raw byte sequences.
Bytes encode_instr(const AsmInstr& ins);

}  // namespace deflection::isa
