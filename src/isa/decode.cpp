#include "isa/decode.h"

namespace deflection::isa {

namespace {

bool decode_mem(BytesView text, std::size_t& pos, Mem& mem) {
  std::uint8_t mode = text[pos++];
  // Bits 4+ of the mode byte must be zero: any other value is a malformed
  // encoding, which the TCB decoder must reject.
  if ((mode & ~0x0Fu) != 0) return false;
  mem.has_base = (mode & 0x1) != 0;
  mem.has_index = (mode & 0x2) != 0;
  mem.scale_log2 = static_cast<std::uint8_t>((mode >> 2) & 0x3);
  std::uint8_t regs = text[pos++];
  mem.base = static_cast<Reg>(regs >> 4);
  mem.index = static_cast<Reg>(regs & 0xF);
  if (!mem.has_index && (regs & 0xF) != 0) return false;
  if (!mem.has_base && (regs >> 4) != 0) return false;
  mem.disp = static_cast<std::int32_t>(load_le32(text.data() + pos));
  pos += 4;
  return true;
}

std::int64_t read_i32(BytesView text, std::size_t& pos) {
  std::int32_t v = static_cast<std::int32_t>(load_le32(text.data() + pos));
  pos += 4;
  return v;
}

}  // namespace

Result<Instr> decode_one(BytesView text, std::size_t offset, std::uint64_t base_addr) {
  if (offset >= text.size())
    return Result<Instr>::fail("decode_oob", "decode offset beyond text end");

  Instr ins;
  ins.addr = base_addr + offset;
  std::uint8_t opbyte = text[offset];
  if (opbyte >= static_cast<std::uint8_t>(Op::kOpCount))
    return Result<Instr>::fail("decode_bad_opcode",
                               "invalid opcode byte " + std::to_string(opbyte));
  ins.op = static_cast<Op>(opbyte);
  Layout layout = ins.layout();
  std::uint32_t len = layout_length(layout);
  if (offset + len > text.size())
    return Result<Instr>::fail("decode_truncated", "instruction extends past text end");
  ins.length = len;

  std::size_t pos = offset + 1;
  auto reg_byte_single = [&](Reg& out) -> bool {
    std::uint8_t b = text[pos++];
    if ((b & 0x0F) != 0) return false;  // low nibble reserved
    out = static_cast<Reg>(b >> 4);
    return true;
  };

  switch (layout) {
    case Layout::None:
      break;
    case Layout::R:
      if (!reg_byte_single(ins.rd))
        return Result<Instr>::fail("decode_bad_reg", "reserved bits set in register byte");
      break;
    case Layout::RR: {
      std::uint8_t b = text[pos++];
      ins.rd = static_cast<Reg>(b >> 4);
      ins.rs = static_cast<Reg>(b & 0xF);
      break;
    }
    case Layout::RI32:
      if (!reg_byte_single(ins.rd))
        return Result<Instr>::fail("decode_bad_reg", "reserved bits set in register byte");
      ins.imm = read_i32(text, pos);
      break;
    case Layout::RI64:
      if (!reg_byte_single(ins.rd))
        return Result<Instr>::fail("decode_bad_reg", "reserved bits set in register byte");
      ins.imm = static_cast<std::int64_t>(load_le64(text.data() + pos));
      pos += 8;
      break;
    case Layout::RM:
      if (!reg_byte_single(ins.rd))
        return Result<Instr>::fail("decode_bad_reg", "reserved bits set in register byte");
      if (!decode_mem(text, pos, ins.mem))
        return Result<Instr>::fail("decode_bad_mem", "malformed memory operand");
      break;
    case Layout::MR:
      if (!reg_byte_single(ins.rs))
        return Result<Instr>::fail("decode_bad_reg", "reserved bits set in register byte");
      if (!decode_mem(text, pos, ins.mem))
        return Result<Instr>::fail("decode_bad_mem", "malformed memory operand");
      break;
    case Layout::MI32:
      if (!decode_mem(text, pos, ins.mem))
        return Result<Instr>::fail("decode_bad_mem", "malformed memory operand");
      ins.imm = read_i32(text, pos);
      break;
    case Layout::I32:
      ins.imm = read_i32(text, pos);
      break;
    case Layout::I8:
      ins.imm = text[pos++];
      break;
    case Layout::Rel32:
      ins.imm = read_i32(text, pos);
      break;
    case Layout::CondRel32: {
      std::uint8_t c = text[pos++];
      if (c >= kNumConds)
        return Result<Instr>::fail("decode_bad_cond", "invalid condition code");
      ins.cond = static_cast<Cond>(c);
      ins.imm = read_i32(text, pos);
      break;
    }
  }
  return ins;
}

Result<std::vector<Instr>> decode_all(BytesView text, std::uint64_t base_addr) {
  std::vector<Instr> out;
  std::size_t offset = 0;
  while (offset < text.size()) {
    auto r = decode_one(text, offset, base_addr);
    if (!r.is_ok()) return r.error();
    offset += r.value().length;
    out.push_back(r.take());
  }
  return out;
}

}  // namespace deflection::isa
