#include "isa/assemble.h"

#include <limits>
#include <sstream>

namespace deflection::isa {

namespace {

void encode_mem(ByteWriter& w, const Mem& mem) {
  std::uint8_t mode = 0;
  if (mem.has_base) mode |= 0x1;
  if (mem.has_index) mode |= 0x2;
  mode |= static_cast<std::uint8_t>((mem.scale_log2 & 0x3) << 2);
  w.u8(mode);
  std::uint8_t regs = 0;
  if (mem.has_base) regs |= static_cast<std::uint8_t>(static_cast<int>(mem.base) << 4);
  if (mem.has_index) regs |= static_cast<std::uint8_t>(static_cast<int>(mem.index));
  w.u8(regs);
  w.i32(mem.disp);
}

}  // namespace

Bytes encode_instr(const AsmInstr& ins) {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(ins.op));
  switch (op_layout(ins.op)) {
    case Layout::None:
      break;
    case Layout::R:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rd) << 4));
      break;
    case Layout::RR:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rd) << 4 |
                                     static_cast<int>(ins.rs)));
      break;
    case Layout::RI32:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rd) << 4));
      w.i32(static_cast<std::int32_t>(ins.imm));
      break;
    case Layout::RI64:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rd) << 4));
      w.i64(ins.imm);
      break;
    case Layout::RM:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rd) << 4));
      encode_mem(w, ins.mem);
      break;
    case Layout::MR:
      w.u8(static_cast<std::uint8_t>(static_cast<int>(ins.rs) << 4));
      encode_mem(w, ins.mem);
      break;
    case Layout::MI32:
      encode_mem(w, ins.mem);
      w.i32(static_cast<std::int32_t>(ins.imm));
      break;
    case Layout::I32:
      w.i32(static_cast<std::int32_t>(ins.imm));
      break;
    case Layout::I8:
      w.u8(static_cast<std::uint8_t>(ins.imm));
      break;
    case Layout::Rel32:
      w.i32(static_cast<std::int32_t>(ins.imm));
      break;
    case Layout::CondRel32:
      w.u8(static_cast<std::uint8_t>(ins.cond));
      w.i32(static_cast<std::int32_t>(ins.imm));
      break;
  }
  return out;
}

Result<Encoded> assemble(const AsmProgram& program) {
  // Pass 1: lay out offsets and collect label positions.
  std::map<std::string, std::uint64_t> labels;
  std::uint64_t offset = 0;
  for (const auto& item : program.items()) {
    if (item.kind == AsmItem::Kind::Label) {
      auto [it, inserted] = labels.emplace(item.label, offset);
      (void)it;
      if (!inserted)
        return Result<Encoded>::fail("asm_dup_label", "duplicate label: " + item.label);
    } else {
      offset += op_length(item.instr.op);
    }
  }

  // Pass 2: encode, resolving rel32 branch targets against the label map.
  Encoded out;
  out.labels = labels;
  out.text.reserve(offset);
  std::uint64_t pc = 0;
  for (const auto& item : program.items()) {
    if (item.kind == AsmItem::Kind::Label) continue;
    AsmInstr ins = item.instr;
    std::uint32_t len = op_length(ins.op);
    if (!ins.target.empty()) {
      auto it = labels.find(ins.target);
      if (it == labels.end())
        return Result<Encoded>::fail("asm_undef_label", "undefined label: " + ins.target);
      std::int64_t rel = static_cast<std::int64_t>(it->second) -
                         static_cast<std::int64_t>(pc + len);
      if (rel < std::numeric_limits<std::int32_t>::min() ||
          rel > std::numeric_limits<std::int32_t>::max())
        return Result<Encoded>::fail("asm_rel_overflow", "rel32 overflow to " + ins.target);
      ins.imm = rel;
    }
    if (!ins.reloc_symbol.empty()) {
      if (op_layout(ins.op) != Layout::RI64)
        return Result<Encoded>::fail("asm_bad_reloc", "relocation on non-imm64 instruction");
      // imm64 field sits 2 bytes into a RI64 instruction.
      out.relocs.push_back(Encoded::Reloc{pc + 2, ins.reloc_symbol, ins.imm});
    }
    Bytes enc = encode_instr(ins);
    out.text.insert(out.text.end(), enc.begin(), enc.end());
    pc += len;
  }
  return out;
}

std::string AsmProgram::to_string() const {
  std::ostringstream os;
  for (const auto& item : items_) {
    if (item.kind == AsmItem::Kind::Label) {
      os << item.label << ":\n";
      continue;
    }
    const AsmInstr& ins = item.instr;
    os << (ins.annotation ? "  # " : "    ") << op_name(ins.op);
    if (!ins.target.empty()) os << " -> " << ins.target;
    if (!ins.reloc_symbol.empty()) os << " @" << ins.reloc_symbol << "+" << ins.imm;
    os << "\n";
  }
  return os.str();
}

}  // namespace deflection::isa
