// Finite-field Diffie–Hellman key agreement (simulation-grade).
//
// The paper negotiates session keys with Diffie–Hellman during its RA-TLS
// handshakes. We implement classic DH over the 64-bit safe-prime field
// p = 0xFFFFFFFFFFFFFFC5 with generator 5, using 128-bit intermediate
// arithmetic. The group is far too small for real security — DESIGN.md
// documents this substitution; the protocol flow (ephemeral keys, shared
// secret -> HKDF -> channel keys) is exactly the paper's.
#pragma once

#include <cstdint>

#include "crypto/cipher.h"
#include "support/rng.h"

namespace deflection::crypto {

struct DhKeyPair {
  std::uint64_t secret;
  std::uint64_t public_value;
};

std::uint64_t dh_modexp(std::uint64_t base, std::uint64_t exp);

DhKeyPair dh_generate(Rng& rng);

// shared = peer_public ^ my_secret mod p, expanded to a 256-bit key.
Key256 dh_shared_key(std::uint64_t my_secret, std::uint64_t peer_public);

}  // namespace deflection::crypto
