#include "crypto/dh.h"

namespace deflection::crypto {

namespace {
// Largest 64-bit prime; not a safe prime, but adequate for the simulated
// handshake (see header).
constexpr std::uint64_t kPrime = 0xFFFFFFFFFFFFFFC5ull;
constexpr std::uint64_t kGenerator = 5;

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kPrime);
}
}  // namespace

std::uint64_t dh_modexp(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  base %= kPrime;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base);
    base = mulmod(base, base);
    exp >>= 1;
  }
  return result;
}

DhKeyPair dh_generate(Rng& rng) {
  std::uint64_t secret = 0;
  while (secret < 2) secret = rng.next() % kPrime;
  return DhKeyPair{secret, dh_modexp(kGenerator, secret)};
}

Key256 dh_shared_key(std::uint64_t my_secret, std::uint64_t peer_public) {
  std::uint64_t shared = dh_modexp(peer_public, my_secret);
  Bytes material(8);
  store_le64(material.data(), shared);
  return key_from_digest(derive_key(material, "deflection-dh-session"));
}

}  // namespace deflection::crypto
