#include "crypto/sha256.h"

#include <cstring>

namespace deflection::crypto {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256::reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  std::size_t i = 0;
  if (buf_len_ > 0) {
    while (buf_len_ < 64 && i < data.size()) buf_[buf_len_++] = data[i++];
    if (buf_len_ == 64) {
      compress(buf_);
      buf_len_ = 0;
    }
  }
  while (i + 64 <= data.size()) {
    compress(data.data() + i);
    i += 64;
  }
  while (i < data.size()) buf_[buf_len_++] = data[i++];
}

Digest Sha256::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i)
    pad[pad_len + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(BytesView(pad, pad_len + 8));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  reset();
  return out;
}

void HmacSha256::reset(BytesView key) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    Digest kd = Sha256::hash(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad_[i] = k[i] ^ 0x5c;
  }
  inner_.reset();
  inner_.update(BytesView(ipad, 64));
}

Digest HmacSha256::finish() {
  Digest id = inner_.finish();
  Sha256 outer;
  outer.update(BytesView(opad_, 64));
  outer.update(BytesView(id.data(), id.size()));
  return outer.finish();
}

Digest hmac_sha256(BytesView key, BytesView msg) {
  HmacSha256 mac(key);
  mac.update(msg);
  return mac.finish();
}

Digest derive_key(BytesView key, const std::string& label) {
  Bytes msg(label.begin(), label.end());
  msg.push_back(0x01);
  return hmac_sha256(key, msg);
}

bool digest_equal(const Digest& a, const Digest& b) {
  // Constant-time comparison: the real system compares MACs this way to
  // avoid timing side channels in the attestation path.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace deflection::crypto
