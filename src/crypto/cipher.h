// ChaCha20 stream cipher (RFC 8439 core) and an encrypt-then-MAC
// authenticated-encryption construction (ChaCha20 + HMAC-SHA256).
//
// The paper's prototype uses mbedTLS inside the enclave for its RA-TLS
// channels and for the P0 output-encryption wrappers; this module is our
// from-scratch substitute. ChaCha20 and HMAC are the genuine algorithms;
// the AEAD composition is textbook encrypt-then-MAC rather than Poly1305.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/sha256.h"
#include "support/bytes.h"

namespace deflection::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

// Raw ChaCha20 keystream XOR (encrypt == decrypt).
void chacha20_xor(const Key256& key, const Nonce96& nonce, std::uint32_t counter,
                  BytesView in, std::uint8_t* out);

// Authenticated encryption. Wire format: nonce(12) || ciphertext || tag(32).
Bytes aead_seal(const Key256& key, const Nonce96& nonce, BytesView plaintext,
                BytesView aad = {});

// Returns nullopt on authentication failure.
std::optional<Bytes> aead_open(const Key256& key, BytesView sealed, BytesView aad = {});

// ChaCha20 keystream carried across calls: xor_bytes(a); xor_bytes(b)
// produces the same bytes as chacha20_xor over concat(a, b), for any split.
class ChaChaStream {
 public:
  ChaChaStream(const Key256& key, const Nonce96& nonce, std::uint32_t counter = 1)
      : key_(key), nonce_(nonce), counter_(counter) {}

  void xor_bytes(BytesView in, std::uint8_t* out);

 private:
  Key256 key_;
  Nonce96 nonce_;
  std::uint32_t counter_;
  std::uint8_t ks_[64];
  std::size_t ks_off_ = 64;  // 64 = no keystream buffered
};

// Incremental counterpart of aead_open for a sealed stream whose total
// length is declared up front. The wire format is the same
// nonce(12) || ciphertext || tag(32); feed() accepts the sealed bytes in
// arbitrary pieces and appends the plaintext they decode to `plain_out`.
// The tag is only checked at finish(): until it returns true the plaintext
// is UNAUTHENTICATED and callers must not act on it beyond parsing into
// quarantined staging state.
class AeadStreamOpener {
 public:
  // False when `total` cannot be a sealed blob (shorter than nonce + tag).
  bool begin(const Key256& key, std::uint64_t total, BytesView aad = {});
  // Consumes the next bytes of the sealed stream; false on overrun past
  // the declared total.
  bool feed(BytesView in, Bytes& plain_out);
  // All `total` bytes fed and the tag authenticates (constant-time).
  bool finish();

 private:
  std::optional<ChaChaStream> cipher_;
  std::optional<HmacSha256> mac_;
  Key256 key_{};
  std::uint8_t head_[12];       // nonce, buffered until 12 bytes arrived
  std::uint8_t tail_[32];       // trailing tag bytes
  std::uint64_t total_ = 0;
  std::uint64_t fed_ = 0;
};

Key256 key_from_digest(const Digest& d);

}  // namespace deflection::crypto
