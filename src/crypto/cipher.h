// ChaCha20 stream cipher (RFC 8439 core) and an encrypt-then-MAC
// authenticated-encryption construction (ChaCha20 + HMAC-SHA256).
//
// The paper's prototype uses mbedTLS inside the enclave for its RA-TLS
// channels and for the P0 output-encryption wrappers; this module is our
// from-scratch substitute. ChaCha20 and HMAC are the genuine algorithms;
// the AEAD composition is textbook encrypt-then-MAC rather than Poly1305.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/sha256.h"
#include "support/bytes.h"

namespace deflection::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

// Raw ChaCha20 keystream XOR (encrypt == decrypt).
void chacha20_xor(const Key256& key, const Nonce96& nonce, std::uint32_t counter,
                  BytesView in, std::uint8_t* out);

// Authenticated encryption. Wire format: nonce(12) || ciphertext || tag(32).
Bytes aead_seal(const Key256& key, const Nonce96& nonce, BytesView plaintext,
                BytesView aad = {});

// Returns nullopt on authentication failure.
std::optional<Bytes> aead_open(const Key256& key, BytesView sealed, BytesView aad = {});

Key256 key_from_digest(const Digest& d);

}  // namespace deflection::crypto
