#include "crypto/cipher.h"

#include <cstring>

namespace deflection::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b;
  d ^= a;
  d = rotl(d, 16);
  c += d;
  b ^= c;
  b = rotl(b, 12);
  a += b;
  d ^= a;
  d = rotl(d, 8);
  c += d;
  b ^= c;
  b = rotl(b, 7);
}

void chacha20_block(const Key256& key, const Nonce96& nonce, std::uint32_t counter,
                    std::uint8_t out[64]) {
  std::uint32_t st[16];
  st[0] = 0x61707865;
  st[1] = 0x3320646e;
  st[2] = 0x79622d32;
  st[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) st[4 + i] = load_le32(key.data() + 4 * i);
  st[12] = counter;
  for (int i = 0; i < 3; ++i) st[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, st, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = w[i] + st[i];
    store_le32(out + 4 * i, v);
  }
}

}  // namespace

void chacha20_xor(const Key256& key, const Nonce96& nonce, std::uint32_t counter,
                  BytesView in, std::uint8_t* out) {
  std::uint8_t ks[64];
  std::size_t off = 0;
  while (off < in.size()) {
    chacha20_block(key, nonce, counter++, ks);
    std::size_t n = std::min<std::size_t>(64, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ ks[i];
    off += n;
  }
}

Bytes aead_seal(const Key256& key, const Nonce96& nonce, BytesView plaintext,
                BytesView aad) {
  Bytes out(12 + plaintext.size() + 32);
  std::memcpy(out.data(), nonce.data(), 12);
  chacha20_xor(key, nonce, 1, plaintext, out.data() + 12);

  // MAC over aad || nonce || ciphertext with a derived MAC key.
  Digest mac_key = derive_key(BytesView(key.data(), key.size()), "deflection-aead-mac");
  Bytes mac_input;
  mac_input.insert(mac_input.end(), aad.begin(), aad.end());
  mac_input.insert(mac_input.end(), out.begin(), out.begin() + 12 + static_cast<std::ptrdiff_t>(plaintext.size()));
  Digest tag = hmac_sha256(BytesView(mac_key.data(), mac_key.size()), mac_input);
  std::memcpy(out.data() + 12 + plaintext.size(), tag.data(), 32);
  return out;
}

std::optional<Bytes> aead_open(const Key256& key, BytesView sealed, BytesView aad) {
  if (sealed.size() < 12 + 32) return std::nullopt;
  std::size_t ct_len = sealed.size() - 12 - 32;

  Digest mac_key = derive_key(BytesView(key.data(), key.size()), "deflection-aead-mac");
  Bytes mac_input;
  mac_input.insert(mac_input.end(), aad.begin(), aad.end());
  mac_input.insert(mac_input.end(), sealed.begin(), sealed.begin() + 12 + static_cast<std::ptrdiff_t>(ct_len));
  Digest expect = hmac_sha256(BytesView(mac_key.data(), mac_key.size()), mac_input);
  Digest got;
  std::memcpy(got.data(), sealed.data() + 12 + ct_len, 32);
  if (!digest_equal(expect, got)) return std::nullopt;

  Nonce96 nonce;
  std::memcpy(nonce.data(), sealed.data(), 12);
  Bytes plain(ct_len);
  chacha20_xor(key, nonce, 1, sealed.subspan(12, ct_len), plain.data());
  return plain;
}

void ChaChaStream::xor_bytes(BytesView in, std::uint8_t* out) {
  std::size_t off = 0;
  while (off < in.size()) {
    if (ks_off_ == 64) {
      chacha20_block(key_, nonce_, counter_++, ks_);
      ks_off_ = 0;
    }
    std::size_t n = std::min<std::size_t>(64 - ks_off_, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ ks_[ks_off_ + i];
    ks_off_ += n;
    off += n;
  }
}

bool AeadStreamOpener::begin(const Key256& key, std::uint64_t total, BytesView aad) {
  if (total < 12 + 32) return false;
  key_ = key;
  total_ = total;
  fed_ = 0;
  cipher_.reset();
  Digest mac_key = derive_key(BytesView(key.data(), key.size()), "deflection-aead-mac");
  mac_.emplace(BytesView(mac_key.data(), mac_key.size()));
  mac_->update(aad);
  return true;
}

bool AeadStreamOpener::feed(BytesView in, Bytes& plain_out) {
  if (fed_ + in.size() > total_) return false;
  std::size_t off = 0;
  const std::uint64_t ct_end = total_ - 32;
  while (off < in.size()) {
    std::uint64_t pos = fed_ + off;
    if (pos < 12) {
      // Nonce prefix: buffer, MAC, and start the cipher once complete.
      std::size_t n = std::min<std::size_t>(12 - pos, in.size() - off);
      std::memcpy(head_ + pos, in.data() + off, n);
      mac_->update(in.subspan(off, n));
      off += n;
      if (pos + n == 12) {
        Nonce96 nonce;
        std::memcpy(nonce.data(), head_, 12);
        cipher_.emplace(key_, nonce, 1);
      }
    } else if (pos < ct_end) {
      // Ciphertext: MAC the sealed bytes, then decrypt into the output.
      std::size_t n = std::min<std::uint64_t>(ct_end - pos, in.size() - off);
      mac_->update(in.subspan(off, n));
      std::size_t old = plain_out.size();
      plain_out.resize(old + n);
      cipher_->xor_bytes(in.subspan(off, n), plain_out.data() + old);
      off += n;
    } else {
      // Trailing tag bytes: withheld from both MAC and cipher.
      std::size_t n = in.size() - off;
      std::memcpy(tail_ + (pos - ct_end), in.data() + off, n);
      off += n;
    }
  }
  fed_ += in.size();
  return true;
}

bool AeadStreamOpener::finish() {
  if (fed_ != total_ || !mac_) return false;
  Digest expect = mac_->finish();
  Digest got;
  std::memcpy(got.data(), tail_, 32);
  return digest_equal(expect, got);
}

Key256 key_from_digest(const Digest& d) {
  Key256 k;
  std::memcpy(k.data(), d.data(), 32);
  return k;
}

}  // namespace deflection::crypto
