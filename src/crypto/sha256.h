// SHA-256 (FIPS 180-4). Used for enclave measurement (the simulated
// MRENCLAVE), attestation report MACs (via HMAC), and session key
// derivation. This is the genuine algorithm, implemented from the spec.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace deflection::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Digest finish();

  static Digest hash(BytesView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(BytesView key, BytesView msg);

// Incremental HMAC-SHA256: feed the message in arbitrary pieces. The result
// is identical to hmac_sha256(key, concat(pieces)); the one-shot helper is a
// wrapper over this class.
class HmacSha256 {
 public:
  explicit HmacSha256(BytesView key) { reset(key); }

  void reset(BytesView key);
  void update(BytesView data) { inner_.update(data); }
  Digest finish();

 private:
  Sha256 inner_;
  std::uint8_t opad_[64];
};

// HKDF-style two-step key derivation used for session keys:
// derive(key, label) = HMAC(key, label || 0x01).
Digest derive_key(BytesView key, const std::string& label);

bool digest_equal(const Digest& a, const Digest& b);

}  // namespace deflection::crypto
