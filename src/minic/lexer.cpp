#include "minic/lexer.h"

#include <cctype>
#include <map>

namespace deflection::minic {

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"int", Tok::KwInt},       {"float", Tok::KwFloat}, {"byte", Tok::KwByte},
      {"void", Tok::KwVoid},     {"fn", Tok::KwFn},       {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile}, {"for", Tok::KwFor},
      {"return", Tok::KwReturn}, {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
  };
  return kw;
}

}  // namespace

Result<std::vector<Token>> lex(const std::string& source) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  auto fail = [&](const std::string& msg) {
    return Result<std::vector<Token>>::fail(
        "lex_error", "line " + std::to_string(line) + ": " + msg);
  };
  auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= source.size()) return fail("unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_'))
        ++i;
      std::string word = source.substr(start, i - start);
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second);
      } else {
        Token t;
        t.kind = Tok::Ident;
        t.line = line;
        t.text = word;
        out.push_back(std::move(t));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_float = false;
      bool is_hex = c == '0' && i + 1 < source.size() &&
                    (source[i + 1] == 'x' || source[i + 1] == 'X');
      if (is_hex) {
        i += 2;
        while (i < source.size() && std::isxdigit(static_cast<unsigned char>(source[i]))) ++i;
      } else {
        while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        if (i < source.size() && source[i] == '.') {
          is_float = true;
          ++i;
          while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        }
        if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
          is_float = true;
          ++i;
          if (i < source.size() && (source[i] == '+' || source[i] == '-')) ++i;
          while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        }
      }
      std::string num = source.substr(start, i - start);
      Token t;
      t.line = line;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_value = std::stod(num);
      } else {
        t.kind = Tok::IntLit;
        t.int_value = is_hex ? static_cast<std::int64_t>(std::stoull(num, nullptr, 16))
                             : static_cast<std::int64_t>(std::stoll(num));
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string s;
      while (i < source.size() && source[i] != '"') {
        char ch = source[i];
        if (ch == '\\' && i + 1 < source.size()) {
          ++i;
          char esc = source[i];
          if (esc == 'n') ch = '\n';
          else if (esc == 't') ch = '\t';
          else if (esc == '0') ch = '\0';
          else ch = esc;
        }
        if (ch == '\n') ++line;
        s.push_back(ch);
        ++i;
      }
      if (i >= source.size()) return fail("unterminated string literal");
      ++i;
      Token t;
      t.kind = Tok::StringLit;
      t.line = line;
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      if (i + 2 >= source.size()) return fail("unterminated char literal");
      char v = source[i + 1];
      std::size_t close = i + 2;
      if (v == '\\') {
        char esc = source[i + 2];
        if (esc == 'n') v = '\n';
        else if (esc == 't') v = '\t';
        else if (esc == '0') v = '\0';
        else v = esc;
        close = i + 3;
      }
      if (close >= source.size() || source[close] != '\'')
        return fail("unterminated char literal");
      Token t;
      t.kind = Tok::CharLit;
      t.line = line;
      t.int_value = static_cast<unsigned char>(v);
      out.push_back(std::move(t));
      i = close + 1;
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    switch (c) {
      case '(': push(Tok::LParen); ++i; break;
      case ')': push(Tok::RParen); ++i; break;
      case '{': push(Tok::LBrace); ++i; break;
      case '}': push(Tok::RBrace); ++i; break;
      case '[': push(Tok::LBracket); ++i; break;
      case ']': push(Tok::RBracket); ++i; break;
      case ',': push(Tok::Comma); ++i; break;
      case ';': push(Tok::Semi); ++i; break;
      case '~': push(Tok::Tilde); ++i; break;
      case '^': push(Tok::Caret); ++i; break;
      case '+':
        if (two('=')) { push(Tok::PlusAssign); i += 2; } else { push(Tok::Plus); ++i; }
        break;
      case '-':
        if (two('=')) { push(Tok::MinusAssign); i += 2; } else { push(Tok::Minus); ++i; }
        break;
      case '*':
        if (two('=')) { push(Tok::StarAssign); i += 2; } else { push(Tok::Star); ++i; }
        break;
      case '/':
        if (two('=')) { push(Tok::SlashAssign); i += 2; } else { push(Tok::Slash); ++i; }
        break;
      case '%':
        if (two('=')) { push(Tok::PercentAssign); i += 2; } else { push(Tok::Percent); ++i; }
        break;
      case '=':
        if (two('=')) { push(Tok::Eq); i += 2; } else { push(Tok::Assign); ++i; }
        break;
      case '!':
        if (two('=')) { push(Tok::Ne); i += 2; } else { push(Tok::Bang); ++i; }
        break;
      case '<':
        if (two('=')) { push(Tok::Le); i += 2; }
        else if (two('<')) { push(Tok::Shl); i += 2; }
        else { push(Tok::Lt); ++i; }
        break;
      case '>':
        if (two('=')) { push(Tok::Ge); i += 2; }
        else if (two('>')) { push(Tok::Shr); i += 2; }
        else { push(Tok::Gt); ++i; }
        break;
      case '&':
        if (two('&')) { push(Tok::AndAnd); i += 2; } else { push(Tok::Amp); ++i; }
        break;
      case '|':
        if (two('|')) { push(Tok::OrOr); i += 2; } else { push(Tok::Pipe); ++i; }
        break;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
  }
  push(Tok::End);
  return out;
}

}  // namespace deflection::minic
