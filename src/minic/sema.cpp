#include "minic/sema.h"

namespace deflection::minic {

std::string Type::to_string() const {
  std::string s;
  switch (base) {
    case BaseType::Void: s = "void"; break;
    case BaseType::Int: s = "int"; break;
    case BaseType::Float: s = "float"; break;
    case BaseType::Byte: s = "byte"; break;
    case BaseType::Fn: s = "fn"; break;
  }
  for (int i = 0; i < pointer_depth; ++i) s += "*";
  return s;
}

const std::map<std::string, FuncSig>& builtin_signatures() {
  static const std::map<std::string, FuncSig> builtins = {
      {"itof", {Type::float_type(), {Type::int_type()}}},
      {"ftoi", {Type::int_type(), {Type::float_type()}}},
      {"f_sqrt", {Type::float_type(), {Type::float_type()}}},
      {"f_sin", {Type::float_type(), {Type::float_type()}}},
      {"f_cos", {Type::float_type(), {Type::float_type()}}},
      {"f_exp", {Type::float_type(), {Type::float_type()}}},
      {"f_log", {Type::float_type(), {Type::float_type()}}},
      {"f_abs", {Type::float_type(), {Type::float_type()}}},
      {"alloc", {Type::ptr(BaseType::Byte), {Type::int_type()}}},
      {"to_int_ptr", {Type::ptr(BaseType::Int), {Type::ptr(BaseType::Byte)}}},
      {"to_float_ptr", {Type::ptr(BaseType::Float), {Type::ptr(BaseType::Byte)}}},
      {"to_byte_ptr", {Type::ptr(BaseType::Byte), {Type::ptr(BaseType::Byte)}}},
      // Forges a pointer from an integer. Legitimate code rarely needs it;
      // it is the escape hatch a malicious service would use to address
      // untrusted host memory — exactly what P1 exists to stop.
      {"as_ptr", {Type::ptr(BaseType::Byte), {Type::int_type()}}},
      {"ptr_to_int", {Type::int_type(), {Type::ptr(BaseType::Byte)}}},
      {"ocall_send", {Type::int_type(), {Type::ptr(BaseType::Byte), Type::int_type()}}},
      {"ocall_recv", {Type::int_type(), {Type::ptr(BaseType::Byte), Type::int_type()}}},
      {"print_int", {Type::void_type(), {Type::int_type()}}},
  };
  return builtins;
}

namespace {

struct Symbol {
  Type type;
  bool is_array = false;
};

class Sema {
 public:
  Status run(Module& module) {
    for (const auto& g : module.globals) {
      Type t = normalize_scalar(g.type);
      if (t.is_void())
        return fail(g.line, "global '" + g.name + "' cannot be void");
      if (globals_.contains(g.name))
        return fail(g.line, "duplicate global '" + g.name + "'");
      globals_[g.name] = Symbol{t, g.array_size > 0};
    }
    for (const auto& f : module.functions) {
      if (functions_.contains(f.name))
        return fail(f.line, "duplicate function '" + f.name + "'");
      if (builtin_signatures().contains(f.name))
        return fail(f.line, "'" + f.name + "' shadows a builtin");
      FuncSig sig;
      sig.return_type = f.return_type;
      for (const auto& p : f.params) sig.params.push_back(normalize_scalar(p.type));
      functions_[f.name] = sig;
    }
    for (auto& f : module.functions) {
      if (auto s = check_function(f); !s.is_ok()) return s;
    }
    return Status::ok();
  }

 private:
  // Scalar `byte` variables are held in 8-byte slots and behave like int;
  // only *pointers to* byte select 1-byte memory accesses.
  static Type normalize_scalar(Type t) {
    if (t.is_byte()) return Type::int_type();
    return t;
  }

  Status fail(int line, const std::string& msg) {
    return Status::fail("type_error", "line " + std::to_string(line) + ": " + msg);
  }

  Status check_function(FuncDecl& func) {
    scopes_.clear();
    scopes_.emplace_back();
    current_return_ = func.return_type;
    for (const auto& p : func.params) {
      if (p.type.is_void()) return fail(func.line, "void parameter");
      scopes_.back()[p.name] = Symbol{normalize_scalar(p.type), false};
    }
    if (func.params.size() > 6)
      return fail(func.line, "more than 6 parameters are not supported");
    return check_stmt(*func.body);
  }

  Symbol* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    auto g = globals_.find(name);
    if (g != globals_.end()) return &g->second;
    return nullptr;
  }

  Status check_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (auto& s : stmt.body)
          if (auto st = check_stmt(*s); !st.is_ok()) return st;
        scopes_.pop_back();
        return Status::ok();
      }
      case StmtKind::VarDecl: {
        Type t = normalize_scalar(stmt.var_type);
        if (t.is_void()) return fail(stmt.line, "void variable");
        if (scopes_.back().contains(stmt.var_name))
          return fail(stmt.line, "duplicate variable '" + stmt.var_name + "'");
        if (stmt.array_size < 0 ||
            (stmt.array_size > 0 && stmt.array_size > 4096))
          return fail(stmt.line,
                      "local array too large for the guarded frame; use alloc()");
        // Local byte arrays keep byte element type (1-byte accesses).
        Type elem = stmt.array_size > 0 ? stmt.var_type : t;
        if (stmt.array_size > 0 && elem.store_size() * stmt.array_size > 2048)
          return fail(stmt.line,
                      "local array too large for the guarded frame; use alloc()");
        scopes_.back()[stmt.var_name] = Symbol{stmt.array_size > 0 ? elem : t,
                                               stmt.array_size > 0};
        if (stmt.init) {
          if (stmt.array_size > 0) return fail(stmt.line, "cannot initialize arrays");
          if (auto s = check_expr(*stmt.init); !s.is_ok()) return s;
          if (auto s = coerce(stmt.init, t); !s.is_ok())
            return fail(stmt.line, "initializer type mismatch for '" + stmt.var_name +
                                       "': " + stmt.init->type.to_string() + " vs " +
                                       t.to_string());
        }
        return Status::ok();
      }
      case StmtKind::If: {
        if (auto s = check_expr(*stmt.cond); !s.is_ok()) return s;
        if (!stmt.cond->type.is_integral())
          return fail(stmt.line, "condition must be integral");
        if (auto s = check_stmt(*stmt.then_stmt); !s.is_ok()) return s;
        if (stmt.else_stmt) return check_stmt(*stmt.else_stmt);
        return Status::ok();
      }
      case StmtKind::While: {
        if (auto s = check_expr(*stmt.cond); !s.is_ok()) return s;
        if (!stmt.cond->type.is_integral())
          return fail(stmt.line, "condition must be integral");
        ++loop_depth_;
        auto s = check_stmt(*stmt.loop_body);
        --loop_depth_;
        return s;
      }
      case StmtKind::For: {
        scopes_.emplace_back();
        if (stmt.for_init)
          if (auto s = check_stmt(*stmt.for_init); !s.is_ok()) return s;
        if (stmt.cond) {
          if (auto s = check_expr(*stmt.cond); !s.is_ok()) return s;
          if (!stmt.cond->type.is_integral())
            return fail(stmt.line, "condition must be integral");
        }
        if (stmt.for_step)
          if (auto s = check_stmt(*stmt.for_step); !s.is_ok()) return s;
        ++loop_depth_;
        auto s = check_stmt(*stmt.loop_body);
        --loop_depth_;
        scopes_.pop_back();
        return s;
      }
      case StmtKind::Return: {
        if (stmt.expr) {
          if (auto s = check_expr(*stmt.expr); !s.is_ok()) return s;
          if (auto s = coerce(stmt.expr, current_return_); !s.is_ok())
            return fail(stmt.line, "return type mismatch");
        } else if (!current_return_.is_void()) {
          return fail(stmt.line, "missing return value");
        }
        return Status::ok();
      }
      case StmtKind::Break:
      case StmtKind::Continue:
        if (loop_depth_ == 0) return fail(stmt.line, "break/continue outside loop");
        return Status::ok();
      case StmtKind::ExprStmt:
        return check_expr(*stmt.expr);
    }
    return Status::ok();
  }

  // Implicit int -> float conversion only (wrapped at codegen by checking
  // types); everything else must match exactly.
  Status coerce(ExprPtr& e, const Type& target) {
    if (e->type == target) return Status::ok();
    // Byte loads are zero-extended into registers, so byte values coerce to
    // int with no conversion code.
    if (e->type.is_byte() && target.is_int()) return Status::ok();
    if ((e->type.is_int() || e->type.is_byte()) && target.is_float()) {
      auto conv = std::make_unique<Expr>();
      conv->kind = ExprKind::Call;
      conv->line = e->line;
      conv->type = Type::float_type();
      auto callee = std::make_unique<Expr>();
      callee->kind = ExprKind::Ident;
      callee->name = "itof";
      callee->line = e->line;
      conv->callee = std::move(callee);
      conv->args.push_back(std::move(e));
      e = std::move(conv);
      return Status::ok();
    }
    return Status::fail("type_error", "cannot convert " + e->type.to_string() +
                                          " to " + target.to_string());
  }

  Status check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = Type::int_type();
        return Status::ok();
      case ExprKind::FloatLit:
        e.type = Type::float_type();
        return Status::ok();
      case ExprKind::StringLit:
        e.type = Type::ptr(BaseType::Byte);
        return Status::ok();
      case ExprKind::Ident: {
        Symbol* sym = lookup(e.name);
        if (sym == nullptr) {
          // A bare function name is only meaningful under '&' or as a direct
          // callee; both handle it before recursing here.
          return fail_expr(e, "unknown identifier '" + e.name + "'");
        }
        e.type = sym->is_array ? sym->type.pointer_to() : sym->type;
        return Status::ok();
      }
      case ExprKind::Unary:
        return check_unary(e);
      case ExprKind::Binary:
        return check_binary(e);
      case ExprKind::Assign:
        return check_assign(e);
      case ExprKind::Call:
        return check_call(e);
      case ExprKind::Index: {
        if (auto s = check_expr(*e.a); !s.is_ok()) return s;
        if (auto s = check_expr(*e.b); !s.is_ok()) return s;
        if (!e.a->type.is_pointer())
          return fail_expr(e, "indexing a non-pointer");
        if (!e.b->type.is_int() && !e.b->type.is_byte())
          return fail_expr(e, "index must be int");
        e.type = e.a->type.pointee();
        if (e.type.is_byte()) e.type = e.type;  // byte loads produce int at use
        return Status::ok();
      }
    }
    return Status::ok();
  }

  Status fail_expr(const Expr& e, const std::string& msg) {
    return fail(e.line, msg);
  }

  Status check_unary(Expr& e) {
    if (e.op == '&') {
      // &function or &lvalue.
      if (e.a->kind == ExprKind::Ident && lookup(e.a->name) == nullptr) {
        if (!functions_.contains(e.a->name))
          return fail_expr(e, "unknown function '" + e.a->name + "'");
        e.a->type = Type::fn_type();
        e.type = Type::fn_type();
        return Status::ok();
      }
      if (auto s = check_expr(*e.a); !s.is_ok()) return s;
      if (!is_lvalue(*e.a)) return fail_expr(e, "'&' needs an lvalue");
      if (e.a->type.is_byte()) e.type = Type::ptr(BaseType::Byte);
      else e.type = e.a->type.pointer_to();
      return Status::ok();
    }
    if (auto s = check_expr(*e.a); !s.is_ok()) return s;
    switch (e.op) {
      case '-':
        if (!e.a->type.is_int() && !e.a->type.is_float())
          return fail_expr(e, "unary '-' needs int or float");
        e.type = e.a->type;
        return Status::ok();
      case '!':
        if (!e.a->type.is_integral()) return fail_expr(e, "'!' needs integral");
        e.type = Type::int_type();
        return Status::ok();
      case '~':
        if (!e.a->type.is_int()) return fail_expr(e, "'~' needs int");
        e.type = Type::int_type();
        return Status::ok();
      case '*':
        if (!e.a->type.is_pointer()) return fail_expr(e, "deref of non-pointer");
        e.type = e.a->type.pointee();
        return Status::ok();
      default:
        return fail_expr(e, "bad unary operator");
    }
  }

  Status check_binary(Expr& e) {
    if (auto s = check_expr(*e.a); !s.is_ok()) return s;
    if (auto s = check_expr(*e.b); !s.is_ok()) return s;
    Type ta = e.a->type, tb = e.b->type;
    // Byte element loads act as int.
    if (ta.is_byte()) ta = Type::int_type();
    if (tb.is_byte()) tb = Type::int_type();

    switch (e.op) {
      case '+':
      case '-':
        if (ta.is_pointer() && tb.is_int()) {
          e.type = ta;
          return Status::ok();
        }
        [[fallthrough]];
      case '*':
      case '/':
        if (ta.is_int() && tb.is_int()) {
          e.type = Type::int_type();
          return Status::ok();
        }
        // int/float mixing: promote the int side.
        if (ta.is_float() && tb.is_int()) {
          if (auto s = coerce(e.b, Type::float_type()); !s.is_ok()) return s;
          e.type = Type::float_type();
          return Status::ok();
        }
        if (ta.is_int() && tb.is_float()) {
          if (auto s = coerce(e.a, Type::float_type()); !s.is_ok()) return s;
          e.type = Type::float_type();
          return Status::ok();
        }
        if (ta.is_float() && tb.is_float()) {
          e.type = Type::float_type();
          return Status::ok();
        }
        return fail_expr(e, std::string("bad operands for '") + e.op + "'");
      case '%':
      case '&':
      case '|':
      case '^':
      case 'L':
      case 'R':
        if (ta.is_int() && tb.is_int()) {
          e.type = Type::int_type();
          return Status::ok();
        }
        return fail_expr(e, "bitwise/shift/mod needs ints");
      case 'E':
      case 'N':
      case '<':
      case 'l':
      case '>':
      case 'g': {
        bool both_num = (ta.is_int() || ta.is_float()) && (tb.is_int() || tb.is_float());
        bool both_ptr = ta.is_pointer() && tb.is_pointer();
        bool both_fn = ta.is_fn() && tb.is_fn();
        if (!both_num && !both_ptr && !both_fn)
          return fail_expr(e, "bad comparison operands");
        if (both_num && ta != tb) {
          if (ta.is_int()) {
            if (auto s = coerce(e.a, Type::float_type()); !s.is_ok()) return s;
          } else {
            if (auto s = coerce(e.b, Type::float_type()); !s.is_ok()) return s;
          }
        }
        e.type = Type::int_type();
        return Status::ok();
      }
      case 'A':
      case 'O':
        if (!ta.is_integral() || !tb.is_integral())
          return fail_expr(e, "'&&'/'||' need integral operands");
        e.type = Type::int_type();
        return Status::ok();
      default:
        return fail_expr(e, "bad binary operator");
    }
  }

  bool is_lvalue(const Expr& e) {
    if (e.kind == ExprKind::Ident) {
      Symbol* sym = const_cast<Sema*>(this)->lookup(e.name);
      return sym != nullptr && !sym->is_array;
    }
    return (e.kind == ExprKind::Unary && e.op == '*') || e.kind == ExprKind::Index;
  }

  Status check_assign(Expr& e) {
    if (auto s = check_expr(*e.a); !s.is_ok()) return s;
    if (!is_lvalue(*e.a)) return fail_expr(e, "assignment target is not an lvalue");
    if (auto s = check_expr(*e.b); !s.is_ok()) return s;
    Type target = e.a->type;
    // Stores through byte pointers take int values (truncated).
    Type value_target = target.is_byte() ? Type::int_type() : target;
    if (e.op != 0) {
      // Compound assignment: lhs op rhs must type-check like binary.
      if (target.is_byte()) {
        if (!e.b->type.is_int() && !e.b->type.is_byte())
          return fail_expr(e, "byte compound needs int");
      } else if (target.is_float()) {
        if (auto s = coerce(e.b, Type::float_type()); !s.is_ok()) return s;
      } else if (target.is_int()) {
        if (!e.b->type.is_int() && !e.b->type.is_byte())
          return fail_expr(e, "int compound needs int");
      } else if (target.is_pointer() && (e.op == '+' || e.op == '-')) {
        if (!e.b->type.is_int()) return fail_expr(e, "pointer += needs int");
      } else {
        return fail_expr(e, "bad compound assignment");
      }
    } else {
      if (auto s = coerce(e.b, value_target); !s.is_ok())
        return fail_expr(e, "assignment type mismatch: " + e.b->type.to_string() +
                                " to " + target.to_string());
    }
    e.type = target;
    return Status::ok();
  }

  Status check_call(Expr& e) {
    // Direct call / builtin: callee is a bare identifier naming a function.
    if (e.callee->kind == ExprKind::Ident && lookup(e.callee->name) == nullptr) {
      const std::string& name = e.callee->name;
      const FuncSig* sig = nullptr;
      auto bi = builtin_signatures().find(name);
      if (bi != builtin_signatures().end()) sig = &bi->second;
      auto fi = functions_.find(name);
      if (sig == nullptr && fi != functions_.end()) sig = &fi->second;
      if (sig == nullptr) return fail_expr(e, "unknown function '" + name + "'");
      if (e.args.size() != sig->params.size())
        return fail_expr(e, "wrong argument count for '" + name + "'");
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (auto s = check_expr(*e.args[i]); !s.is_ok()) return s;
        Type want = sig->params[i];
        // to_*_ptr / ptr_to_int accept any pointer.
        bool any_ptr_ok = (name.rfind("to_", 0) == 0 || name == "ptr_to_int") &&
                          e.args[i]->type.is_pointer();
        if (!any_ptr_ok) {
          if (auto s = coerce(e.args[i], want); !s.is_ok())
            return fail_expr(e, "argument " + std::to_string(i + 1) + " of '" + name +
                                    "': cannot convert " +
                                    e.args[i]->type.to_string() + " to " +
                                    want.to_string());
        }
      }
      e.type = sig->return_type;
      e.callee->type = Type::fn_type();
      return Status::ok();
    }
    // Indirect call through a fn value: int args, int result.
    if (auto s = check_expr(*e.callee); !s.is_ok()) return s;
    if (!e.callee->type.is_fn())
      return fail_expr(e, "call of non-function value");
    if (e.args.size() > 6) return fail_expr(e, "too many arguments");
    for (auto& arg : e.args) {
      if (auto s = check_expr(*arg); !s.is_ok()) return s;
      if (!arg->type.is_integral())
        return fail_expr(e, "fn-pointer calls take integral arguments");
    }
    e.type = Type::int_type();
    return Status::ok();
  }

  std::map<std::string, Symbol> globals_;
  std::map<std::string, FuncSig> functions_;
  std::vector<std::map<std::string, Symbol>> scopes_;
  Type current_return_;
  int loop_depth_ = 0;
};

}  // namespace

Status analyze(Module& module) {
  Sema sema;
  return sema.run(module);
}

}  // namespace deflection::minic
