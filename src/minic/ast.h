// MiniC abstract syntax tree.
//
// MiniC is the source language of this reproduction's code producer — the
// stand-in for "the target program (in C)" that the paper compiles with its
// customized LLVM. It is a small, C-like language with 64-bit integers,
// doubles, bytes, pointers, fixed-size arrays, function pointers (the
// `fn` type — needed by the nBench ASSIGNMENT kernel, which the paper calls
// out as function-pointer heavy), and the builtins the enclave runtime
// provides (heap allocation, OCall send/recv, libm-style math).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace deflection::minic {

// ---- Types ----

enum class BaseType : std::uint8_t { Void, Int, Float, Byte, Fn };

struct Type {
  BaseType base = BaseType::Void;
  int pointer_depth = 0;  // int** -> base=Int, depth=2

  static Type void_type() { return {BaseType::Void, 0}; }
  static Type int_type() { return {BaseType::Int, 0}; }
  static Type float_type() { return {BaseType::Float, 0}; }
  static Type byte_type() { return {BaseType::Byte, 0}; }
  static Type fn_type() { return {BaseType::Fn, 0}; }
  static Type ptr(BaseType base, int depth = 1) { return {base, depth}; }

  bool is_void() const { return base == BaseType::Void && pointer_depth == 0; }
  bool is_int() const { return base == BaseType::Int && pointer_depth == 0; }
  bool is_float() const { return base == BaseType::Float && pointer_depth == 0; }
  bool is_byte() const { return base == BaseType::Byte && pointer_depth == 0; }
  bool is_fn() const { return base == BaseType::Fn && pointer_depth == 0; }
  bool is_pointer() const { return pointer_depth > 0; }
  // Scalars that fit a register as an integer-like value.
  bool is_integral() const { return is_int() || is_byte() || is_pointer() || is_fn(); }

  Type pointee() const { return {base, pointer_depth - 1}; }
  Type pointer_to() const { return {base, pointer_depth + 1}; }

  // Size of one element of this type when stored in memory.
  int store_size() const { return (is_byte()) ? 1 : 8; }

  bool operator==(const Type&) const = default;
  std::string to_string() const;
};

// ---- Expressions ----

enum class ExprKind {
  IntLit,
  FloatLit,
  StringLit,   // byte* into the data section
  Ident,
  Unary,       // op: '-', '!', '~', '*', '&'
  Binary,      // arithmetic / comparison / logic / shifts
  Assign,      // lhs op= rhs (op == 0 for plain '=')
  Call,        // callee is Ident (direct or builtin) or expression (fn value)
  Index,       // base[index]
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;

  // Filled by sema:
  Type type;

  // IntLit / FloatLit / StringLit
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;

  // Ident
  std::string name;

  // Unary / Binary / Assign: op is a token char or 2-char code
  // ("==" -> 'E', "!=" -> 'N', "<=" -> 'l', ">=" -> 'g', "&&" -> 'A',
  //  "||" -> 'O', "<<" -> 'L', ">>" -> 'R').
  char op = 0;

  ExprPtr a, b;                 // operands (unary: a; binary/assign/index: a,b)
  std::vector<ExprPtr> args;    // Call arguments
  ExprPtr callee;               // Call: expression form (fn value call)
};

// ---- Statements ----

enum class StmtKind {
  Block,
  VarDecl,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  ExprStmt,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::vector<StmtPtr> body;      // Block
  // VarDecl
  Type var_type;
  std::string var_name;
  std::int64_t array_size = 0;    // > 0 for array declarations
  ExprPtr init;
  // If / While / For
  ExprPtr cond;
  StmtPtr then_stmt, else_stmt;   // If
  StmtPtr loop_body;              // While / For
  StmtPtr for_init, for_step;     // For (simple statements)
  // Return / ExprStmt
  ExprPtr expr;
};

// ---- Declarations ----

struct Param {
  Type type;
  std::string name;
};

struct FuncDecl {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;
  int line = 0;
};

struct GlobalDecl {
  Type type;
  std::string name;
  std::int64_t array_size = 0;  // > 0 for arrays (zero-initialized)
  int line = 0;
};

struct Module {
  std::vector<GlobalDecl> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace deflection::minic
