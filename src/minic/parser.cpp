#include "minic/parser.h"

#include "minic/lexer.h"

namespace deflection::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Module> run() {
    Module module;
    while (peek().kind != Tok::End) {
      if (!parse_top_level(module)) return err_;
      if (failed_) return err_;
    }
    return module;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at(Tok kind) const { return peek().kind == kind; }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    take();
    return true;
  }
  bool expect(Tok kind, const std::string& what) {
    if (accept(kind)) return true;
    fail("expected " + what);
    return false;
  }
  void fail(const std::string& msg) {
    if (failed_) return;
    failed_ = true;
    err_ = Error::make("parse_error",
                       "line " + std::to_string(peek().line) + ": " + msg);
  }

  bool at_type() const {
    Tok k = peek().kind;
    return k == Tok::KwInt || k == Tok::KwFloat || k == Tok::KwByte ||
           k == Tok::KwVoid || k == Tok::KwFn;
  }

  Type parse_type() {
    Type t;
    switch (take().kind) {
      case Tok::KwInt: t.base = BaseType::Int; break;
      case Tok::KwFloat: t.base = BaseType::Float; break;
      case Tok::KwByte: t.base = BaseType::Byte; break;
      case Tok::KwVoid: t.base = BaseType::Void; break;
      case Tok::KwFn: t.base = BaseType::Fn; break;
      default:
        fail("expected type");
        return t;
    }
    while (accept(Tok::Star)) ++t.pointer_depth;
    return t;
  }

  bool parse_top_level(Module& module) {
    if (!at_type()) {
      fail("expected declaration");
      return false;
    }
    int line = peek().line;
    Type type = parse_type();
    if (failed_) return false;
    if (!at(Tok::Ident)) {
      fail("expected identifier");
      return false;
    }
    std::string name = take().text;

    if (at(Tok::LParen)) {
      FuncDecl func;
      func.return_type = type;
      func.name = std::move(name);
      func.line = line;
      take();  // (
      if (!at(Tok::RParen)) {
        do {
          if (!at_type()) {
            fail("expected parameter type");
            return false;
          }
          Param p;
          p.type = parse_type();
          if (!at(Tok::Ident)) {
            fail("expected parameter name");
            return false;
          }
          p.name = take().text;
          func.params.push_back(std::move(p));
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::RParen, "')'")) return false;
      func.body = parse_block();
      if (failed_) return false;
      module.functions.push_back(std::move(func));
      return true;
    }

    GlobalDecl g;
    g.type = type;
    g.name = std::move(name);
    g.line = line;
    if (accept(Tok::LBracket)) {
      if (!at(Tok::IntLit)) {
        fail("expected array size");
        return false;
      }
      g.array_size = take().int_value;
      if (!expect(Tok::RBracket, "']'")) return false;
    }
    if (!expect(Tok::Semi, "';' after global")) return false;
    module.globals.push_back(std::move(g));
    return true;
  }

  StmtPtr make_stmt(StmtKind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = peek().line;
    return s;
  }

  StmtPtr parse_block() {
    auto block = make_stmt(StmtKind::Block);
    if (!expect(Tok::LBrace, "'{'")) return block;
    while (!at(Tok::RBrace) && !at(Tok::End) && !failed_) {
      block->body.push_back(parse_stmt());
    }
    expect(Tok::RBrace, "'}'");
    return block;
  }

  StmtPtr parse_stmt() {
    if (at(Tok::LBrace)) return parse_block();
    if (at_type()) return parse_var_decl();
    if (accept(Tok::KwIf)) {
      auto s = make_stmt(StmtKind::If);
      expect(Tok::LParen, "'(' after if");
      s->cond = parse_expr();
      expect(Tok::RParen, "')'");
      s->then_stmt = parse_stmt();
      if (accept(Tok::KwElse)) s->else_stmt = parse_stmt();
      return s;
    }
    if (accept(Tok::KwWhile)) {
      auto s = make_stmt(StmtKind::While);
      expect(Tok::LParen, "'(' after while");
      s->cond = parse_expr();
      expect(Tok::RParen, "')'");
      s->loop_body = parse_stmt();
      return s;
    }
    if (accept(Tok::KwFor)) {
      auto s = make_stmt(StmtKind::For);
      expect(Tok::LParen, "'(' after for");
      if (!at(Tok::Semi)) {
        s->for_init = at_type() ? parse_var_decl_nosemi() : parse_expr_stmt_nosemi();
      }
      expect(Tok::Semi, "';' in for");
      if (!at(Tok::Semi)) s->cond = parse_expr();
      expect(Tok::Semi, "';' in for");
      if (!at(Tok::RParen)) s->for_step = parse_expr_stmt_nosemi();
      expect(Tok::RParen, "')'");
      s->loop_body = parse_stmt();
      return s;
    }
    if (accept(Tok::KwReturn)) {
      auto s = make_stmt(StmtKind::Return);
      if (!at(Tok::Semi)) s->expr = parse_expr();
      expect(Tok::Semi, "';' after return");
      return s;
    }
    if (accept(Tok::KwBreak)) {
      auto s = make_stmt(StmtKind::Break);
      expect(Tok::Semi, "';' after break");
      return s;
    }
    if (accept(Tok::KwContinue)) {
      auto s = make_stmt(StmtKind::Continue);
      expect(Tok::Semi, "';' after continue");
      return s;
    }
    auto s = parse_expr_stmt_nosemi();
    expect(Tok::Semi, "';' after expression");
    return s;
  }

  StmtPtr parse_var_decl() {
    auto s = parse_var_decl_nosemi();
    expect(Tok::Semi, "';' after declaration");
    return s;
  }

  StmtPtr parse_var_decl_nosemi() {
    auto s = make_stmt(StmtKind::VarDecl);
    s->var_type = parse_type();
    if (!at(Tok::Ident)) {
      fail("expected variable name");
      return s;
    }
    s->var_name = take().text;
    if (accept(Tok::LBracket)) {
      if (!at(Tok::IntLit)) {
        fail("expected array size");
        return s;
      }
      s->array_size = take().int_value;
      expect(Tok::RBracket, "']'");
    }
    if (accept(Tok::Assign)) s->init = parse_expr();
    return s;
  }

  StmtPtr parse_expr_stmt_nosemi() {
    auto s = make_stmt(StmtKind::ExprStmt);
    s->expr = parse_expr();
    return s;
  }

  // ---- Expressions ----

  ExprPtr make_expr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = peek().line;
    return e;
  }

  ExprPtr parse_expr() { return parse_assign(); }

  ExprPtr parse_assign() {
    ExprPtr lhs = parse_or();
    char compound = 0;
    switch (peek().kind) {
      case Tok::Assign: compound = 0; break;
      case Tok::PlusAssign: compound = '+'; break;
      case Tok::MinusAssign: compound = '-'; break;
      case Tok::StarAssign: compound = '*'; break;
      case Tok::SlashAssign: compound = '/'; break;
      case Tok::PercentAssign: compound = '%'; break;
      default:
        return lhs;
    }
    take();
    auto e = make_expr(ExprKind::Assign);
    e->op = compound;
    e->a = std::move(lhs);
    e->b = parse_assign();
    return e;
  }

  ExprPtr binary(char op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->line = a ? a->line : 0;
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (accept(Tok::OrOr)) e = binary('O', std::move(e), parse_and());
    return e;
  }
  ExprPtr parse_and() {
    ExprPtr e = parse_bitor();
    while (accept(Tok::AndAnd)) e = binary('A', std::move(e), parse_bitor());
    return e;
  }
  ExprPtr parse_bitor() {
    ExprPtr e = parse_bitxor();
    while (accept(Tok::Pipe)) e = binary('|', std::move(e), parse_bitxor());
    return e;
  }
  ExprPtr parse_bitxor() {
    ExprPtr e = parse_bitand();
    while (accept(Tok::Caret)) e = binary('^', std::move(e), parse_bitand());
    return e;
  }
  ExprPtr parse_bitand() {
    ExprPtr e = parse_equality();
    while (accept(Tok::Amp)) e = binary('&', std::move(e), parse_equality());
    return e;
  }
  ExprPtr parse_equality() {
    ExprPtr e = parse_relational();
    for (;;) {
      if (accept(Tok::Eq)) e = binary('E', std::move(e), parse_relational());
      else if (accept(Tok::Ne)) e = binary('N', std::move(e), parse_relational());
      else return e;
    }
  }
  ExprPtr parse_relational() {
    ExprPtr e = parse_shift();
    for (;;) {
      if (accept(Tok::Lt)) e = binary('<', std::move(e), parse_shift());
      else if (accept(Tok::Le)) e = binary('l', std::move(e), parse_shift());
      else if (accept(Tok::Gt)) e = binary('>', std::move(e), parse_shift());
      else if (accept(Tok::Ge)) e = binary('g', std::move(e), parse_shift());
      else return e;
    }
  }
  ExprPtr parse_shift() {
    ExprPtr e = parse_additive();
    for (;;) {
      if (accept(Tok::Shl)) e = binary('L', std::move(e), parse_additive());
      else if (accept(Tok::Shr)) e = binary('R', std::move(e), parse_additive());
      else return e;
    }
  }
  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    for (;;) {
      if (accept(Tok::Plus)) e = binary('+', std::move(e), parse_multiplicative());
      else if (accept(Tok::Minus)) e = binary('-', std::move(e), parse_multiplicative());
      else return e;
    }
  }
  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    for (;;) {
      if (accept(Tok::Star)) e = binary('*', std::move(e), parse_unary());
      else if (accept(Tok::Slash)) e = binary('/', std::move(e), parse_unary());
      else if (accept(Tok::Percent)) e = binary('%', std::move(e), parse_unary());
      else return e;
    }
  }

  ExprPtr parse_unary() {
    char op = 0;
    if (accept(Tok::Minus)) op = '-';
    else if (accept(Tok::Bang)) op = '!';
    else if (accept(Tok::Tilde)) op = '~';
    else if (accept(Tok::Star)) op = '*';
    else if (accept(Tok::Amp)) op = '&';
    if (op != 0) {
      auto e = make_expr(ExprKind::Unary);
      e->op = op;
      e->a = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (at(Tok::LParen)) {
        take();
        auto call = make_expr(ExprKind::Call);
        call->callee = std::move(e);
        if (!at(Tok::RParen)) {
          do {
            call->args.push_back(parse_expr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')' after arguments");
        e = std::move(call);
      } else if (at(Tok::LBracket)) {
        take();
        auto idx = make_expr(ExprKind::Index);
        idx->a = std::move(e);
        idx->b = parse_expr();
        expect(Tok::RBracket, "']'");
        e = std::move(idx);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    if (at(Tok::IntLit)) {
      auto e = make_expr(ExprKind::IntLit);
      e->int_value = take().int_value;
      return e;
    }
    if (at(Tok::CharLit)) {
      auto e = make_expr(ExprKind::IntLit);
      e->int_value = take().int_value;
      return e;
    }
    if (at(Tok::FloatLit)) {
      auto e = make_expr(ExprKind::FloatLit);
      e->float_value = take().float_value;
      return e;
    }
    if (at(Tok::StringLit)) {
      auto e = make_expr(ExprKind::StringLit);
      e->str_value = take().text;
      return e;
    }
    if (at(Tok::Ident)) {
      auto e = make_expr(ExprKind::Ident);
      e->name = take().text;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "')'");
      return e;
    }
    fail("expected expression");
    return make_expr(ExprKind::IntLit);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  Error err_{};
};

}  // namespace

Result<Module> parse(const std::string& source) {
  auto tokens = lex(source);
  if (!tokens.is_ok()) return tokens.error();
  Parser parser(tokens.take());
  return parser.run();
}

}  // namespace deflection::minic
