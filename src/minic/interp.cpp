#include "minic/interp.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <map>

#include "minic/sema.h"

namespace deflection::minic {

namespace {

class Interp {
 public:
  Interp(const Module& module, const std::vector<Bytes>& inputs,
         const InterpLimits& limits)
      : module_(module), limits_(limits) {
    for (const auto& in : inputs) inbox_.push_back(in);
  }

  Result<InterpResult> run() {
    // Layout: [8 null guard][globals][stack 1MB][heap].
    std::uint64_t cursor = 8;
    for (const auto& g : module_.globals) {
      Type t = g.type.is_byte() && g.array_size == 0 ? Type::int_type() : g.type;
      std::uint64_t size = 8;
      if (g.array_size > 0)
        size = static_cast<std::uint64_t>(g.array_size) *
               static_cast<std::uint64_t>(t.store_size());
      size = (size + 7) / 8 * 8;
      globals_[g.name] = GlobalInfo{cursor, t, g.array_size > 0};
      cursor += size;
    }
    stack_base_ = cursor;
    stack_ptr_ = stack_base_;
    heap_ptr_ = stack_base_ + (1 << 20);
    memory_.assign(heap_ptr_ + limits_.heap_size, 0);

    for (const auto& f : module_.functions) functions_[f.name] = &f;
    auto main_it = functions_.find("main");
    if (main_it == functions_.end())
      return Result<InterpResult>::fail("interp_no_main", "missing main");

    std::uint64_t value = 0;
    if (auto s = call_function(*main_it->second, {}, value); !s.is_ok())
      return s.error();
    result_.exit_code = static_cast<std::int64_t>(value);
    return std::move(result_);
  }

 private:
  struct GlobalInfo {
    std::uint64_t addr;
    Type type;
    bool is_array;
  };
  struct Local {
    std::uint64_t addr;
    Type type;
    bool is_array;
  };
  enum class FlowKind { Normal, Return, Break, Continue };
  struct Flow {
    FlowKind kind = FlowKind::Normal;
    std::uint64_t value = 0;
  };

  Status fail(const std::string& code, const std::string& msg) {
    return Status::fail(code, msg);
  }
  Status step() {
    if (++steps_ > limits_.max_steps) return fail("interp_steps", "step limit");
    return Status::ok();
  }

  // ---- memory ----
  bool valid(std::uint64_t addr, std::uint64_t n) const {
    return addr >= 8 && addr + n <= memory_.size();
  }
  Status load64(std::uint64_t addr, std::uint64_t& out) {
    if (!valid(addr, 8)) return fail("interp_mem", "load out of range");
    out = load_le64(memory_.data() + addr);
    return Status::ok();
  }
  Status store64(std::uint64_t addr, std::uint64_t v) {
    if (!valid(addr, 8)) return fail("interp_mem", "store out of range");
    store_le64(memory_.data() + addr, v);
    return Status::ok();
  }
  Status load8(std::uint64_t addr, std::uint64_t& out) {
    if (!valid(addr, 1)) return fail("interp_mem", "load8 out of range");
    out = memory_[addr];
    return Status::ok();
  }
  Status store8(std::uint64_t addr, std::uint64_t v) {
    if (!valid(addr, 1)) return fail("interp_mem", "store8 out of range");
    memory_[addr] = static_cast<std::uint8_t>(v);
    return Status::ok();
  }

  std::uint64_t intern_string(const std::string& s) {
    auto it = strings_.find(s);
    if (it != strings_.end()) return it->second;
    // Strings live at the top of the heap region.
    std::uint64_t addr = heap_ptr_;
    for (char c : s) memory_[heap_ptr_++] = static_cast<std::uint8_t>(c);
    memory_[heap_ptr_++] = 0;
    heap_ptr_ = (heap_ptr_ + 15) / 16 * 16;
    strings_[s] = addr;
    return addr;
  }

  // ---- functions ----
  Status call_function(const FuncDecl& func, const std::vector<std::uint64_t>& args,
                       std::uint64_t& out) {
    if (args.size() != func.params.size())
      return fail("interp_call", "argument count mismatch for " + func.name);
    if (++depth_ > 4000) return fail("interp_depth", "recursion too deep");
    scopes_.emplace_back();
    std::uint64_t saved_stack = stack_ptr_;
    for (std::size_t i = 0; i < args.size(); ++i) {
      Type t = func.params[i].type.is_byte() ? Type::int_type() : func.params[i].type;
      std::uint64_t slot = push_slot(8);
      if (auto s = store64(slot, args[i]); !s.is_ok()) return s;
      scopes_.back()[func.params[i].name] = Local{slot, t, false};
    }
    Flow flow;
    Status status = exec_stmt(*func.body, flow);
    scopes_.pop_back();
    stack_ptr_ = saved_stack;
    --depth_;
    if (!status.is_ok()) return status;
    out = flow.kind == FlowKind::Return ? flow.value : 0;
    return Status::ok();
  }

  std::uint64_t push_slot(std::uint64_t size) {
    std::uint64_t addr = stack_ptr_;
    stack_ptr_ += (size + 7) / 8 * 8;
    return addr;
  }

  Local* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // ---- statements ----
  Status exec_stmt(const Stmt& stmt, Flow& flow) {
    if (auto s = step(); !s.is_ok()) return s;
    switch (stmt.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        Status status = Status::ok();
        for (const auto& child : stmt.body) {
          status = exec_stmt(*child, flow);
          if (!status.is_ok() || flow.kind != FlowKind::Normal) break;
        }
        scopes_.pop_back();
        return status;
      }
      case StmtKind::VarDecl: {
        Type t = stmt.var_type.is_byte() && stmt.array_size == 0 ? Type::int_type()
                                                                 : stmt.var_type;
        std::uint64_t size = 8;
        if (stmt.array_size > 0)
          size = static_cast<std::uint64_t>(stmt.array_size) *
                 static_cast<std::uint64_t>(stmt.var_type.store_size());
        std::uint64_t slot = push_slot(size);
        std::memset(memory_.data() + slot, 0, size);
        scopes_.back()[stmt.var_name] =
            Local{slot, stmt.array_size > 0 ? stmt.var_type : t, stmt.array_size > 0};
        if (stmt.init) {
          std::uint64_t v;
          if (auto s = eval(*stmt.init, v); !s.is_ok()) return s;
          return store64(slot, v);
        }
        return Status::ok();
      }
      case StmtKind::If: {
        std::uint64_t c;
        if (auto s = eval(*stmt.cond, c); !s.is_ok()) return s;
        if (c != 0) return exec_stmt(*stmt.then_stmt, flow);
        if (stmt.else_stmt) return exec_stmt(*stmt.else_stmt, flow);
        return Status::ok();
      }
      case StmtKind::While: {
        for (;;) {
          if (auto s = step(); !s.is_ok()) return s;
          std::uint64_t c;
          if (auto s = eval(*stmt.cond, c); !s.is_ok()) return s;
          if (c == 0) break;
          if (auto s = exec_stmt(*stmt.loop_body, flow); !s.is_ok()) return s;
          if (flow.kind == FlowKind::Break) {
            flow.kind = FlowKind::Normal;
            break;
          }
          if (flow.kind == FlowKind::Continue) flow.kind = FlowKind::Normal;
          if (flow.kind == FlowKind::Return) break;
        }
        return Status::ok();
      }
      case StmtKind::For: {
        scopes_.emplace_back();
        Status status = Status::ok();
        if (stmt.for_init) status = exec_stmt(*stmt.for_init, flow);
        while (status.is_ok() && flow.kind == FlowKind::Normal) {
          if (auto s = step(); !s.is_ok()) {
            status = s;
            break;
          }
          if (stmt.cond) {
            std::uint64_t c;
            status = eval(*stmt.cond, c);
            if (!status.is_ok() || c == 0) break;
          }
          status = exec_stmt(*stmt.loop_body, flow);
          if (!status.is_ok()) break;
          if (flow.kind == FlowKind::Break) {
            flow.kind = FlowKind::Normal;
            break;
          }
          if (flow.kind == FlowKind::Continue) flow.kind = FlowKind::Normal;
          if (flow.kind == FlowKind::Return) break;
          if (stmt.for_step) {
            status = exec_stmt(*stmt.for_step, flow);
            if (!status.is_ok()) break;
          }
        }
        scopes_.pop_back();
        return status;
      }
      case StmtKind::Return:
        flow.kind = FlowKind::Return;
        flow.value = 0;
        if (stmt.expr) return eval(*stmt.expr, flow.value);
        return Status::ok();
      case StmtKind::Break:
        flow.kind = FlowKind::Break;
        return Status::ok();
      case StmtKind::Continue:
        flow.kind = FlowKind::Continue;
        return Status::ok();
      case StmtKind::ExprStmt: {
        std::uint64_t v;
        return eval(*stmt.expr, v);
      }
    }
    return Status::ok();
  }

  // ---- expressions ----
  static double as_f(std::uint64_t v) { return std::bit_cast<double>(v); }
  static std::uint64_t as_u(double v) { return std::bit_cast<std::uint64_t>(v); }

  // Address of an lvalue + the element type stored there.
  Status lvalue_addr(const Expr& e, std::uint64_t& addr, int& elem_size) {
    if (e.kind == ExprKind::Ident) {
      if (Local* local = lookup(e.name)) {
        addr = local->addr;
        elem_size = 8;
        return Status::ok();
      }
      auto g = globals_.find(e.name);
      if (g != globals_.end()) {
        addr = g->second.addr;
        elem_size = 8;
        return Status::ok();
      }
      return fail("interp_name", "unknown identifier " + e.name);
    }
    if (e.kind == ExprKind::Unary && e.op == '*') {
      std::uint64_t p;
      if (auto s = eval(*e.a, p); !s.is_ok()) return s;
      addr = p;
      elem_size = e.type.store_size();
      return Status::ok();
    }
    if (e.kind == ExprKind::Index) {
      std::uint64_t base, idx;
      if (auto s = eval(*e.a, base); !s.is_ok()) return s;
      if (auto s = eval(*e.b, idx); !s.is_ok()) return s;
      int sz = e.a->type.pointee().store_size();
      addr = base + idx * static_cast<std::uint64_t>(sz);
      elem_size = sz;
      return Status::ok();
    }
    return fail("interp_lvalue", "not an lvalue");
  }

  Status eval(const Expr& e, std::uint64_t& out) {
    if (auto s = step(); !s.is_ok()) return s;
    switch (e.kind) {
      case ExprKind::IntLit:
        out = static_cast<std::uint64_t>(e.int_value);
        return Status::ok();
      case ExprKind::FloatLit:
        out = as_u(e.float_value);
        return Status::ok();
      case ExprKind::StringLit:
        out = intern_string(e.str_value);
        return Status::ok();
      case ExprKind::Ident: {
        if (Local* local = lookup(e.name)) {
          if (local->is_array) {
            out = local->addr;
            return Status::ok();
          }
          return load64(local->addr, out);
        }
        auto g = globals_.find(e.name);
        if (g != globals_.end()) {
          if (g->second.is_array) {
            out = g->second.addr;
            return Status::ok();
          }
          return load64(g->second.addr, out);
        }
        return fail("interp_name", "unknown identifier " + e.name);
      }
      case ExprKind::Unary:
        return eval_unary(e, out);
      case ExprKind::Binary:
        return eval_binary(e, out);
      case ExprKind::Assign:
        return eval_assign(e, out);
      case ExprKind::Call:
        return eval_call(e, out);
      case ExprKind::Index: {
        std::uint64_t addr;
        int elem;
        if (auto s = lvalue_addr(e, addr, elem); !s.is_ok()) return s;
        return elem == 1 ? load8(addr, out) : load64(addr, out);
      }
    }
    return Status::ok();
  }

  Status eval_unary(const Expr& e, std::uint64_t& out) {
    if (e.op == '&') {
      if (e.a->kind == ExprKind::Ident && lookup(e.a->name) == nullptr &&
          !globals_.contains(e.a->name)) {
        // &function: tag = 1-based function ordinal (never a valid address
        // below 8, so misuse as a pointer traps).
        std::size_t idx = 0;
        for (const auto& f : module_.functions) {
          ++idx;
          if (f.name == e.a->name) {
            out = idx;
            return Status::ok();
          }
        }
        return fail("interp_name", "unknown function " + e.a->name);
      }
      std::uint64_t addr;
      int elem;
      if (auto s = lvalue_addr(*e.a, addr, elem); !s.is_ok()) return s;
      out = addr;
      return Status::ok();
    }
    std::uint64_t v;
    if (auto s = eval(*e.a, v); !s.is_ok()) return s;
    switch (e.op) {
      case '-': out = e.a->type.is_float() ? as_u(-as_f(v)) : (0 - v); return Status::ok();
      case '~': out = ~v; return Status::ok();
      case '!': out = (v == 0) ? 1 : 0; return Status::ok();
      case '*': {
        int elem = e.type.store_size();
        return elem == 1 ? load8(v, out) : load64(v, out);
      }
      default:
        return fail("interp_unary", "bad unary");
    }
  }

  Status eval_binary(const Expr& e, std::uint64_t& out) {
    if (e.op == 'A') {  // &&
      std::uint64_t a;
      if (auto s = eval(*e.a, a); !s.is_ok()) return s;
      if (a == 0) {
        out = 0;
        return Status::ok();
      }
      std::uint64_t b;
      if (auto s = eval(*e.b, b); !s.is_ok()) return s;
      out = b != 0 ? 1 : 0;
      return Status::ok();
    }
    if (e.op == 'O') {  // ||
      std::uint64_t a;
      if (auto s = eval(*e.a, a); !s.is_ok()) return s;
      if (a != 0) {
        out = 1;
        return Status::ok();
      }
      std::uint64_t b;
      if (auto s = eval(*e.b, b); !s.is_ok()) return s;
      out = b != 0 ? 1 : 0;
      return Status::ok();
    }

    std::uint64_t a, b;
    if (auto s = eval(*e.a, a); !s.is_ok()) return s;
    if (auto s = eval(*e.b, b); !s.is_ok()) return s;
    bool flt = e.a->type.is_float() || e.b->type.is_float();
    bool uns = e.a->type.is_pointer() || e.a->type.is_fn();
    std::int64_t sa = static_cast<std::int64_t>(a), sb = static_cast<std::int64_t>(b);
    bool lhs_scaled = e.a->type.is_pointer() && e.a->type.pointee().store_size() == 8;

    switch (e.op) {
      case '+':
        out = flt ? as_u(as_f(a) + as_f(b)) : a + (lhs_scaled ? b * 8 : b);
        return Status::ok();
      case '-':
        out = flt ? as_u(as_f(a) - as_f(b)) : a - (lhs_scaled ? b * 8 : b);
        return Status::ok();
      case '*':
        // Wrapping multiply: MiniC i64 overflow is defined as two's
        // complement (it matches the VM's ImulRR), so multiply unsigned.
        out = flt ? as_u(as_f(a) * as_f(b)) : a * b;
        return Status::ok();
      case '/':
        if (flt) {
          out = as_u(as_f(a) / as_f(b));
          return Status::ok();
        }
        if (sb == 0) return fail("interp_div", "division by zero");
        if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1)
          return fail("interp_div", "division overflow");
        out = static_cast<std::uint64_t>(sa / sb);
        return Status::ok();
      case '%':
        if (sb == 0) return fail("interp_div", "mod by zero");
        if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1)
          return fail("interp_div", "mod overflow");
        out = static_cast<std::uint64_t>(sa % sb);
        return Status::ok();
      case '&': out = a & b; return Status::ok();
      case '|': out = a | b; return Status::ok();
      case '^': out = a ^ b; return Status::ok();
      case 'L': out = a << (b & 63); return Status::ok();
      case 'R': out = static_cast<std::uint64_t>(sa >> (b & 63)); return Status::ok();
      case 'E': out = compare(e, a, b, flt, uns) == 0 ? 1 : 0; return Status::ok();
      case 'N': out = compare(e, a, b, flt, uns) != 0 ? 1 : 0; return Status::ok();
      case '<': out = compare(e, a, b, flt, uns) < 0 ? 1 : 0; return Status::ok();
      case 'l': out = compare(e, a, b, flt, uns) <= 0 ? 1 : 0; return Status::ok();
      case '>': out = compare(e, a, b, flt, uns) > 0 ? 1 : 0; return Status::ok();
      case 'g': out = compare(e, a, b, flt, uns) >= 0 ? 1 : 0; return Status::ok();
      default:
        return fail("interp_binary", "bad binary");
    }
  }

  // Comparison result: -1/0/1; NaN compares as "greater+unordered" the way
  // the VM models it (all conds false except NE -> encoded as 2).
  int compare(const Expr& e, std::uint64_t a, std::uint64_t b, bool flt, bool uns) {
    (void)e;
    if (flt) {
      double fa = as_f(a), fb = as_f(b);
      if (std::isnan(fa) || std::isnan(fb)) return 2;  // unordered: only != true
      return fa < fb ? -1 : (fa > fb ? 1 : 0);
    }
    if (uns) return a < b ? -1 : (a > b ? 1 : 0);
    std::int64_t sa = static_cast<std::int64_t>(a), sb = static_cast<std::int64_t>(b);
    return sa < sb ? -1 : (sa > sb ? 1 : 0);
  }

  Status eval_assign(const Expr& e, std::uint64_t& out) {
    std::uint64_t value;
    if (e.op == 0) {
      if (auto s = eval(*e.b, value); !s.is_ok()) return s;
    } else {
      // Compound: lhs op rhs with the binary semantics above.
      std::uint64_t a, b;
      if (auto s = eval(*e.a, a); !s.is_ok()) return s;
      if (auto s = eval(*e.b, b); !s.is_ok()) return s;
      bool flt = e.a->type.is_float();
      bool lhs_scaled = e.a->type.is_pointer() && e.a->type.pointee().store_size() == 8;
      std::int64_t sa = static_cast<std::int64_t>(a), sb = static_cast<std::int64_t>(b);
      switch (e.op) {
        case '+': value = flt ? as_u(as_f(a) + as_f(b)) : a + (lhs_scaled ? b * 8 : b); break;
        case '-': value = flt ? as_u(as_f(a) - as_f(b)) : a - (lhs_scaled ? b * 8 : b); break;
        case '*': value = flt ? as_u(as_f(a) * as_f(b)) : static_cast<std::uint64_t>(sa * sb); break;
        case '/':
          if (flt) { value = as_u(as_f(a) / as_f(b)); break; }
          if (sb == 0) return fail("interp_div", "division by zero");
          value = static_cast<std::uint64_t>(sa / sb);
          break;
        case '%':
          if (sb == 0) return fail("interp_div", "mod by zero");
          value = static_cast<std::uint64_t>(sa % sb);
          break;
        default:
          return fail("interp_assign", "bad compound");
      }
    }
    std::uint64_t addr;
    int elem;
    if (auto s = lvalue_addr(*e.a, addr, elem); !s.is_ok()) return s;
    int size = e.a->type.is_byte() ? 1 : elem;
    out = value;
    return size == 1 ? store8(addr, value) : store64(addr, value);
  }

  Status eval_call(const Expr& e, std::uint64_t& out) {
    bool named = e.callee->kind == ExprKind::Ident && lookup(e.callee->name) == nullptr &&
                 !globals_.contains(e.callee->name);
    std::vector<std::uint64_t> args;
    for (const auto& arg : e.args) {
      std::uint64_t v;
      if (auto s = eval(*arg, v); !s.is_ok()) return s;
      args.push_back(v);
    }
    if (named) {
      const std::string& name = e.callee->name;
      auto fn = functions_.find(name);
      if (fn == functions_.end() || builtin_signatures().contains(name))
        return eval_builtin(name, args, out);
      return call_function(*fn->second, args, out);
    }
    std::uint64_t target;
    if (auto s = eval(*e.callee, target); !s.is_ok()) return s;
    if (target == 0 || target > module_.functions.size())
      return fail("interp_callind", "bad function value");
    return call_function(module_.functions[target - 1], args, out);
  }

  Status eval_builtin(const std::string& name, const std::vector<std::uint64_t>& args,
                      std::uint64_t& out) {
    out = 0;
    if (name == "itof") { out = as_u(static_cast<double>(static_cast<std::int64_t>(args[0]))); return Status::ok(); }
    if (name == "ftoi") {
      double v = as_f(args[0]);
      out = (std::isnan(v) || v >= 9.3e18 || v <= -9.3e18)
                ? static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::min())
                : static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
      return Status::ok();
    }
    if (name == "f_sqrt") { out = as_u(std::sqrt(as_f(args[0]))); return Status::ok(); }
    if (name == "f_sin") { out = as_u(std::sin(as_f(args[0]))); return Status::ok(); }
    if (name == "f_cos") { out = as_u(std::cos(as_f(args[0]))); return Status::ok(); }
    if (name == "f_exp") { out = as_u(std::exp(as_f(args[0]))); return Status::ok(); }
    if (name == "f_log") { out = as_u(std::log(as_f(args[0]))); return Status::ok(); }
    if (name == "f_abs") { out = as_u(std::fabs(as_f(args[0]))); return Status::ok(); }
    if (name == "to_int_ptr" || name == "to_float_ptr" || name == "to_byte_ptr" ||
        name == "as_ptr" || name == "ptr_to_int") {
      out = args[0];
      return Status::ok();
    }
    if (name == "alloc") {
      std::uint64_t n = (args[0] + 15) / 16 * 16;
      if (heap_ptr_ + n > memory_.size()) return fail("interp_oom", "heap exhausted");
      out = heap_ptr_;
      heap_ptr_ += n;
      return Status::ok();
    }
    if (name == "ocall_send") {
      std::uint64_t p = args[0], n = args[1];
      if (!valid(p, n)) return fail("interp_mem", "send out of range");
      result_.sent.emplace_back(memory_.begin() + static_cast<std::ptrdiff_t>(p),
                                memory_.begin() + static_cast<std::ptrdiff_t>(p + n));
      out = n;
      return Status::ok();
    }
    if (name == "ocall_recv") {
      if (inbox_.empty()) {
        out = 0;
        return Status::ok();
      }
      Bytes& msg = inbox_.front();
      std::uint64_t n = std::min<std::uint64_t>(msg.size(), args[1]);
      if (!valid(args[0], n)) return fail("interp_mem", "recv out of range");
      std::memcpy(memory_.data() + args[0], msg.data(), n);
      inbox_.pop_front();
      out = n;
      return Status::ok();
    }
    if (name == "print_int") {
      result_.printed.push_back(static_cast<std::int64_t>(args[0]));
      return Status::ok();
    }
    return fail("interp_builtin", "unknown builtin " + name);
  }

  const Module& module_;
  InterpLimits limits_;
  InterpResult result_;
  Bytes memory_;
  std::map<std::string, GlobalInfo> globals_;
  std::map<std::string, const FuncDecl*> functions_;
  std::map<std::string, std::uint64_t> strings_;
  std::vector<std::map<std::string, Local>> scopes_;
  std::deque<Bytes> inbox_;
  std::uint64_t stack_base_ = 0, stack_ptr_ = 0, heap_ptr_ = 0;
  std::uint64_t steps_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<InterpResult> interpret(const Module& module, const std::vector<Bytes>& inputs,
                               const InterpLimits& limits) {
  Interp interp(module, inputs, limits);
  return interp.run();
}

}  // namespace deflection::minic
