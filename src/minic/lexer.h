// MiniC lexer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace deflection::minic {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,
  FloatLit,
  StringLit,
  CharLit,
  KwInt, KwFloat, KwByte, KwVoid, KwFn,
  KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak, KwContinue,
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Assign,            // =
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr,
  Shl, Shr,
};

struct Token {
  Tok kind = Tok::End;
  int line = 1;
  std::string text;        // Ident / StringLit
  std::int64_t int_value = 0;
  double float_value = 0.0;
};

// Tokenizes MiniC source. `//` line comments and `/* */` block comments are
// supported. Fails with a line-tagged error on bad input.
Result<std::vector<Token>> lex(const std::string& source);

}  // namespace deflection::minic
