// MiniC recursive-descent parser.
#pragma once

#include "minic/ast.h"
#include "support/result.h"

namespace deflection::minic {

// Parses a full MiniC module (globals + functions). Types are not checked
// here; run sema (minic/sema.h) on the result before code generation.
Result<Module> parse(const std::string& source);

}  // namespace deflection::minic
