// Reference AST interpreter for MiniC.
//
// Executes a type-checked module directly over the AST, with its own flat
// memory model. It exists for *differential testing*: the compiled DX64
// binary running in the enclave VM must produce the same result as this
// interpreter on the same program — a disagreement means a bug in the
// code generator, the instrumentation passes, or the VM.
//
// Supported surface: everything the code generator supports except OCalls
// (ocall_send/ocall_recv/print_int are modeled against an in-memory mailbox
// so I/O-bearing programs can be diffed too).
#pragma once

#include <deque>

#include "minic/ast.h"
#include "support/bytes.h"
#include "support/result.h"

namespace deflection::minic {

struct InterpResult {
  std::int64_t exit_code = 0;
  std::vector<Bytes> sent;  // ocall_send payloads, in order
  std::vector<std::int64_t> printed;
};

struct InterpLimits {
  std::uint64_t max_steps = 200'000'000;
  std::uint64_t heap_size = 16 * 1024 * 1024;
};

// Runs `module` (must have passed analyze()). `inputs` feed ocall_recv.
Result<InterpResult> interpret(const Module& module, const std::vector<Bytes>& inputs,
                               const InterpLimits& limits = {});

}  // namespace deflection::minic
