// MiniC semantic analysis: symbol resolution and type checking.
//
// Annotates every expression with its Type (written into Expr::type) and
// rejects ill-typed programs so the code generator can assume a well-typed
// tree. Also exposes the builtin signature table shared with codegen.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.h"
#include "support/result.h"

namespace deflection::minic {

struct FuncSig {
  Type return_type;
  std::vector<Type> params;
};

// Builtins provided by the enclave runtime / inline codegen:
//   itof(int)->float, ftoi(float)->int,
//   f_sqrt/f_sin/f_cos/f_exp/f_log/f_abs(float)->float,
//   alloc(int)->byte*                (bump allocator on the enclave heap)
//   to_int_ptr(p)->int*, to_float_ptr(p)->float*, to_byte_ptr(p)->byte*,
//   ocall_send(byte*,int)->int, ocall_recv(byte*,int)->int,
//   print_int(int)->void             (debug OCall; consumer may deny it)
const std::map<std::string, FuncSig>& builtin_signatures();

// Type-checks `module` in place. On success, every Expr::type is filled.
Status analyze(Module& module);

}  // namespace deflection::minic
