#include "verifier/layout.h"

namespace deflection::verifier {

EnclaveLayout EnclaveLayout::compute(std::uint64_t enclave_base,
                                     const LayoutConfig& config) {
  auto page_round = [](std::uint64_t v) {
    return (v + sgx::kPageSize - 1) / sgx::kPageSize * sgx::kPageSize;
  };
  EnclaveLayout out;
  out.enclave_base = enclave_base;
  std::uint64_t cursor = enclave_base;
  auto region = [&](std::uint64_t size) {
    std::uint64_t base = cursor;
    cursor += page_round(size);
    return base;
  };
  out.consumer_base = region(config.consumer_size);
  out.consumer_size = page_round(config.consumer_size);
  out.critical_base = region(config.critical_size);
  out.critical_size = page_round(config.critical_size);
  out.bt_table_base = region(config.bt_table_size);
  out.bt_table_size = page_round(config.bt_table_size);
  out.shadow_base = region(config.shadow_stack_size);
  out.shadow_size = page_round(config.shadow_stack_size);
  out.text_base = region(config.text_size);
  out.text_size = page_round(config.text_size);
  out.data_base = region(config.data_size);
  out.data_size = page_round(config.data_size);
  out.guard_lo_base = region(config.guard_size);
  out.guard_size = page_round(config.guard_size);
  out.stack_base = region(config.stack_size);
  out.stack_size = page_round(config.stack_size);
  out.guard_hi_base = region(config.guard_size);
  out.enclave_size = cursor - enclave_base;

  out.ssa_addr = out.critical_base;  // marker dword sits at SSA+0
  out.aex_count_addr = out.critical_base + 0x200;
  out.ss_ptr_slot = out.critical_base + 0x208;
  return out;
}

}  // namespace deflection::verifier
