// Sealed persistent admission cache — verification verdicts that survive
// process restarts.
//
// The paper argues admission cost is paid once per binary; the in-memory
// VerificationCache delivers that within one process, and this store
// extends it across restarts: the cacheable-collateral pattern from SGX
// endorsement caching applied to VerifyReports. A front-end exports its
// cache as a record file on untrusted storage, encrypted and MAC'd under a
// key derived from the platform identity (sgx::PlatformIdentity — the
// EGETKEY fuse-key model), and a restarted or newly spawned shard imports
// it at boot: every record that authenticates admits its binary warm, so
// the shard skips the full verifier for the world it already verified.
//
// Wire format (all integers little-endian, ByteWriter framing):
//
//   magic            8 bytes  "DFLSEAL1"
//   version          u32      kFormatVersion
//   platform_id      str      (u32 length + bytes; informational, plaintext)
//   record_count     u64
//   record[i]:
//     binary_digest  32 bytes  } plaintext record key — readable by
//     policy_mask    u32       } `deflectc cache-dump` without the
//     config_fp      32 bytes  } platform key
//     body_len       u64
//     body           body_len bytes = aead_seal(seal_key, nonce_i,
//                      serialized entry, aad = record key || index)
//   file_mac         32 bytes  HMAC-SHA256(mac_key, everything above)
//
// Fail-closed import rules (each rule discards, never trusts):
//   - bad magic or version skew        -> the whole file is discarded;
//   - truncation mid-record            -> that record and everything after
//                                         it is discarded (framing is gone);
//   - body_len overflowing the file    -> same as truncation;
//   - AEAD failure (bit flip, swapped
//     record header, wrong platform)   -> that record is discarded;
//   - config-fingerprint mismatch vs
//     the importing shard's config     -> that record is discarded;
//   - patch sites outside the text    -> that record is discarded
//                                         (VerificationCache::import_entry).
// A discarded record costs exactly one cold verification on its next
// admission — the store can accelerate admission, never influence a
// verdict. The whole-file MAC is integrity telemetry (LoadStats.file_mac_ok)
// on top of the per-record authentication, not the import gate: a file with
// one flipped byte still yields every record that individually
// authenticates.
#pragma once

#include <string>
#include <vector>

#include "sgx/platform.h"
#include "verifier/cache.h"

namespace deflection::verifier {

class SealedCacheStore {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;
  // Per-record body sanity cap; a claimed length beyond this (e.g. a
  // tampered u64 near wrap) is treated as truncation.
  static constexpr std::uint64_t kMaxRecordBody = 1ull << 28;

  explicit SealedCacheStore(sgx::PlatformIdentity platform)
      : platform_(std::move(platform)) {}

  const sgx::PlatformIdentity& platform() const { return platform_; }

  // Serializes entries into the sealed record-file format.
  Bytes export_entries(const std::vector<PortableEntry>& entries) const;
  Bytes export_cache(const VerificationCache& cache) const {
    return export_entries(cache.export_entries());
  }

  struct LoadStats {
    bool header_ok = false;      // magic + version parsed and matched
    bool file_mac_ok = false;    // whole-file MAC present and valid
    std::uint64_t records_total = 0;      // claimed by the header
    std::uint64_t records_loaded = 0;     // imported into the cache
    std::uint64_t records_discarded = 0;  // records_total - records_loaded
  };

  // Imports every record that authenticates AND matches `config`'s
  // fingerprint into `cache` (as CacheStats::preloads). Never fails: a
  // malformed or hostile file simply loads fewer (possibly zero) records
  // and the cache falls back to cold verification.
  LoadStats import_into(BytesView file, const VerifyConfig& config,
                        VerificationCache& cache) const;

  // File convenience wrappers. load() of a missing path is a cold start
  // (header_ok=false, zero records), not an error. save() is crash-atomic:
  // it writes a same-directory temp file, fsyncs, renames over `path` and
  // fsyncs the directory, so a reader (or a post-crash boot) only ever
  // sees a complete previous or complete new store, never a torn prefix.
  Status save(const std::string& path, const VerificationCache& cache) const;
  LoadStats load(const std::string& path, const VerifyConfig& config,
                 VerificationCache& cache) const;

  // Plaintext inspection for `deflectc cache-dump`: header and per-record
  // key metadata, no platform key needed and no body decrypted.
  struct DumpRecord {
    crypto::Digest digest{};
    std::uint32_t policy_mask = 0;
    crypto::Digest config{};
    std::uint64_t body_len = 0;
  };
  struct Dump {
    bool header_ok = false;
    std::uint32_t version = 0;
    std::string platform_id;
    std::uint64_t record_count = 0;  // claimed by the header
    bool truncated = false;          // parse ran out before record_count
    bool mac_present = false;        // 32 trailer bytes exist after records
    std::vector<DumpRecord> records; // as many as parsed cleanly
  };
  static Dump dump(BytesView file);

 private:
  crypto::Nonce96 record_nonce(std::uint64_t index,
                               const crypto::Digest& digest) const;
  // AAD binding a record body to its plaintext key fields and position, so
  // swapping two records' headers (or bodies) fails authentication.
  static Bytes record_aad(const PortableEntry& entry, std::uint64_t index);

  sgx::PlatformIdentity platform_;
};

}  // namespace deflection::verifier
