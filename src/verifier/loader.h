// The bootstrap enclave's dynamic loader (trusted, in-TCB).
//
// Responsibilities (paper Sec. IV-D / Fig. 6):
//   1. Build-phase: reserve + measure all enclave regions (the target
//      binary's future text pages get RWX — SGXv1 cannot change permissions
//      after EINIT, which is exactly why policy P4 exists).
//   2. Load-phase ("in-enclave rebase"): parse the delivered DXO, copy text
//      and data into the reserved regions, resolve symbols, apply Abs64
//      relocations, translate the indirect-branch symbol list into loaded
//      addresses, build the branch-target byte table, and initialize the
//      runtime slots (heap bounds, shadow-stack top, SSA marker, AEX count).
//
// Loading does NOT make the binary runnable: the policy verifier must pass
// and the immediate rewriter must patch the annotation placeholders first.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "codegen/dxo.h"
#include "verifier/layout.h"

namespace deflection::verifier {

// Everything the verifier, rewriter and runtime need to know about a
// loaded target binary.
struct LoadedBinary {
  EnclaveLayout layout;
  PolicySet policies;  // claimed by the binary (checked against required)

  std::uint64_t text_base = 0;
  std::uint64_t text_size = 0;   // actual bytes loaded (not region size)
  std::uint64_t data_base = 0;
  std::uint64_t data_image_size = 0;
  std::uint64_t heap_base = 0;
  std::uint64_t heap_end = 0;

  std::uint64_t entry = 0;
  std::uint64_t violation_addr = 0;  // 0 when the binary carries no stub

  std::map<std::string, std::uint64_t> symbols;  // resolved addresses
  std::set<std::uint64_t> function_addrs;        // disassembly roots
  std::vector<std::uint64_t> branch_targets;     // resolved indirect targets
};

class Loader {
 public:
  Loader(sgx::Enclave& enclave, const EnclaveLayout& layout)
      : enclave_(enclave), layout_(layout) {}

  // Build-phase: adds all pages (consumer image measured, everything else
  // reserved) and initializes the enclave, producing its measurement.
  static Result<EnclaveLayout> build_enclave(sgx::Enclave& enclave,
                                             std::uint64_t enclave_base,
                                             const LayoutConfig& config,
                                             BytesView consumer_image);

  // Metadata-only front half of load(): size checks, symbol resolution,
  // entry/violation lookup, relocation validation, and branch-target
  // translation — no address-space writes. The streaming delivery path
  // calls this at tables-ready (dxo.text / dxo.data are presized to their
  // declared lengths but still filling) to obtain the provisional
  // LoadedBinary that pipelined verification and early cache admission
  // key on; for the same dxo, load() returns an identical LoadedBinary.
  Result<LoadedBinary> resolve(const codegen::Dxo& dxo) const;

  // Load-phase: rebases `dxo` into the reserved regions — resolve() plus
  // the section copies, relocation stores, branch-target byte table, and
  // runtime-slot initialization.
  Result<LoadedBinary> load(const codegen::Dxo& dxo);

 private:
  sgx::Enclave& enclave_;
  EnclaveLayout layout_;
};

}  // namespace deflection::verifier
