// In-enclave memory layout managed by the bootstrap enclave's loader.
//
// Region order is security-relevant: the store-bound annotations check a
// single [lo, hi) range, so the regions each policy level protects must be
// *contiguous below* the writable program area:
//
//   enclave_base
//     consumer      RX    bootstrap enclave image (measured)
//     critical      RW    SSA frame + runtime slots (AEX count, shadow top)
//     bt_table      RW*   branch-target byte table   } P3 excludes these
//     shadow_stack  RW    return-address shadow      }
//     text          RWX   target binary (SGXv1: perms fixed, hence P4)
//     data          RW    rodata + globals + heap
//     guard         --    no-permission pages (P2 backstop)
//     stack         RW
//     guard         --
//   enclave_end
//
// Rewritten store bounds per policy level (cumulative, as evaluated in the
// paper): P1 -> [enclave_base, stack_top); +P3 -> [text_base, stack_top);
// +P4 -> [data_base, stack_top).
#pragma once

#include <cstdint>

#include "sgx/platform.h"

namespace deflection::verifier {

struct LayoutConfig {
  std::uint64_t consumer_size = 64 * 1024;
  std::uint64_t critical_size = 16 * 1024;
  std::uint64_t bt_table_size = 256 * 1024;
  std::uint64_t shadow_stack_size = 1024 * 1024;  // paper: 1 MB reserved
  std::uint64_t text_size = 256 * 1024;           // max target text
  std::uint64_t data_size = 24 * 1024 * 1024;     // rodata+globals+heap
  std::uint64_t guard_size = 2 * sgx::kPageSize;
  std::uint64_t stack_size = 1024 * 1024;
};

// Absolute addresses of every region, derived from a base + config.
struct EnclaveLayout {
  std::uint64_t enclave_base = 0;

  std::uint64_t consumer_base = 0, consumer_size = 0;
  std::uint64_t critical_base = 0, critical_size = 0;
  std::uint64_t bt_table_base = 0, bt_table_size = 0;
  std::uint64_t shadow_base = 0, shadow_size = 0;
  std::uint64_t text_base = 0, text_size = 0;
  std::uint64_t data_base = 0, data_size = 0;
  std::uint64_t guard_lo_base = 0, guard_size = 0;
  std::uint64_t stack_base = 0, stack_size = 0;
  std::uint64_t guard_hi_base = 0;
  std::uint64_t enclave_size = 0;

  // Runtime slot addresses inside the critical region.
  std::uint64_t ssa_addr = 0;          // SSA frame (marker at +0)
  std::uint64_t aex_count_addr = 0;
  std::uint64_t ss_ptr_slot = 0;       // holds the shadow-stack top pointer

  std::uint64_t stack_top() const { return stack_base + stack_size; }

  static EnclaveLayout compute(std::uint64_t enclave_base, const LayoutConfig& config);
};

}  // namespace deflection::verifier
