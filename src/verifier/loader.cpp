#include "verifier/loader.h"

#include <cstring>

#include "codegen/annotations.h"

namespace deflection::verifier {

Result<EnclaveLayout> Loader::build_enclave(sgx::Enclave& enclave,
                                            std::uint64_t enclave_base,
                                            const LayoutConfig& config,
                                            BytesView consumer_image) {
  EnclaveLayout layout = EnclaveLayout::compute(enclave_base, config);
  if (enclave.space().enclave_base() != enclave_base ||
      enclave.space().enclave_size() < layout.enclave_size)
    return Result<EnclaveLayout>::fail("layout_space",
                                       "address space smaller than layout");
  if (consumer_image.size() > layout.consumer_size)
    return Result<EnclaveLayout>::fail("layout_consumer", "consumer image too large");

  auto off = [&](std::uint64_t addr) { return addr - enclave_base; };
  // Consumer code: measured content, RX.
  if (!consumer_image.empty()) {
    if (auto s =
            enclave.add_pages(off(layout.consumer_base), consumer_image, sgx::kPermRX);
        !s.is_ok())
      return s.error();
  }
  if (consumer_image.size() < layout.consumer_size) {
    // Remaining consumer pages stay RX and zeroed (measured as metadata).
    std::uint64_t used = (consumer_image.size() + sgx::kPageSize - 1) /
                         sgx::kPageSize * sgx::kPageSize;
    if (used < layout.consumer_size) {
      if (auto s = enclave.add_zero_pages(off(layout.consumer_base) + used,
                                          layout.consumer_size - used, sgx::kPermRX);
          !s.is_ok())
        return s.error();
    }
  }
  struct RegionSpec {
    std::uint64_t base, size;
    std::uint8_t perms;
  };
  const RegionSpec regions[] = {
      {layout.critical_base, layout.critical_size, sgx::kPermRW},
      {layout.bt_table_base, layout.bt_table_size, sgx::kPermRW},
      {layout.shadow_base, layout.shadow_size, sgx::kPermRW},
      {layout.text_base, layout.text_size, sgx::kPermRWX},  // SGXv1: RWX forever
      {layout.data_base, layout.data_size, sgx::kPermRW},
      {layout.guard_lo_base, layout.guard_size, sgx::kPermNone},
      {layout.stack_base, layout.stack_size, sgx::kPermRW},
      {layout.guard_hi_base, layout.guard_size, sgx::kPermNone},
  };
  for (const auto& r : regions) {
    if (auto s = enclave.add_zero_pages(off(r.base), r.size, r.perms); !s.is_ok())
      return s.error();
  }
  enclave.init();
  return layout;
}

Result<LoadedBinary> Loader::resolve(const codegen::Dxo& dxo) const {
  auto fail = [](const std::string& code, const std::string& msg) {
    return Result<LoadedBinary>::fail(code, msg);
  };
  if (!enclave_.initialized()) return fail("load_uninit", "enclave not initialized");
  if (dxo.text.size() > layout_.text_size) return fail("load_text", "text too large");
  // Subtraction form: a huge data image must not wrap `size + 4096` past
  // the layout bound (the 4096 reserves minimum heap headroom).
  if (layout_.data_size < 4096 || dxo.data.size() > layout_.data_size - 4096)
    return fail("load_data", "data image too large");
  if (dxo.text.size() > layout_.bt_table_size)
    return fail("load_bt", "text larger than branch-target table");

  LoadedBinary out;
  out.layout = layout_;
  out.policies = dxo.policies;
  out.text_base = layout_.text_base;
  out.text_size = dxo.text.size();
  out.data_base = layout_.data_base;
  out.data_image_size = dxo.data.size();
  out.heap_base = (layout_.data_base + dxo.data.size() + 15) / 16 * 16;
  out.heap_end = layout_.data_base + layout_.data_size;

  // Resolve symbols against the loaded bases. Offsets are re-checked here
  // rather than trusted from deserialize(): load() also accepts
  // programmatically-built Dxo structs that never went through the parser.
  for (const auto& sym : dxo.symbols) {
    std::uint64_t limit =
        sym.section == codegen::Section::Text ? dxo.text.size() : dxo.data.size();
    if (sym.offset > limit)
      return fail("load_sym", "symbol offset beyond its section: " + sym.name);
    std::uint64_t base =
        sym.section == codegen::Section::Text ? out.text_base : out.data_base;
    std::uint64_t addr = base + sym.offset;
    if (out.symbols.contains(sym.name)) return fail("load_dup_symbol", sym.name);
    out.symbols[sym.name] = addr;
    if (sym.is_function) {
      if (sym.section != codegen::Section::Text)
        return fail("load_sym", "function symbol outside text: " + sym.name);
      if (sym.offset >= dxo.text.size())
        return fail("load_sym", "function symbol beyond text: " + sym.name);
      out.function_addrs.insert(addr);
    }
  }
  auto entry_it = out.symbols.find(dxo.entry);
  if (entry_it == out.symbols.end()) return fail("load_entry", "missing entry symbol");
  out.entry = entry_it->second;
  if (auto viol = out.symbols.find(codegen::kViolationSymbol); viol != out.symbols.end())
    out.violation_addr = viol->second;

  // Validate Abs64 relocations (applied by load(); the stream path applies
  // them into its staging buffer as the covered text bytes arrive).
  for (const auto& rel : dxo.relocs) {
    auto sym = out.symbols.find(rel.symbol);
    if (sym == out.symbols.end()) return fail("load_reloc", "undefined " + rel.symbol);
    // Subtraction form: `text_offset + 8` wraps for offsets near 2^64,
    // which would slip past the bound and index the raw text wildly.
    if (dxo.text.size() < 8 || rel.text_offset > dxo.text.size() - 8)
      return fail("load_reloc", "relocation outside text");
  }

  // Translate the indirect-branch symbol list (the byte table is built by
  // load() from these resolved addresses).
  for (const auto& name : dxo.branch_targets) {
    auto sym = out.symbols.find(name);
    if (sym == out.symbols.end())
      return fail("load_bt", "branch target names unknown symbol " + name);
    std::uint64_t addr = sym->second;
    if (addr < out.text_base || addr >= out.text_base + out.text_size)
      return fail("load_bt", "branch target outside loaded text");
    out.branch_targets.push_back(addr);
  }
  return out;
}

Result<LoadedBinary> Loader::load(const codegen::Dxo& dxo) {
  auto fail = [](const std::string& code, const std::string& msg) {
    return Result<LoadedBinary>::fail(code, msg);
  };
  auto resolved = resolve(dxo);
  if (!resolved.is_ok()) return resolved;
  LoadedBinary out = resolved.take();

  sgx::AddressSpace& space = enclave_.space();

  // Copy sections into the reserved regions (consumer-privilege writes; the
  // text pages are RWX so this models the paper's relocation into heap-like
  // pages under SGXv1).
  if (auto s = space.copy_in(out.text_base, dxo.text); !s.is_ok()) return s.error();
  if (auto s = space.copy_in(out.data_base, dxo.data); !s.is_ok()) return s.error();

  // Apply Abs64 relocations into the text image (bounds and symbols were
  // validated by resolve(); streamed deliveries already carry these exact
  // values in their staged text, so re-applying is idempotent).
  for (const auto& rel : dxo.relocs) {
    auto sym = out.symbols.find(rel.symbol);
    if (sym == out.symbols.end()) return fail("load_reloc", "undefined " + rel.symbol);
    std::uint8_t* p = space.raw(out.text_base + rel.text_offset, 8);
    if (p == nullptr) return fail("load_reloc", "relocation target unmapped");
    store_le64(p, sym->second + static_cast<std::uint64_t>(rel.addend));
  }

  // Build the branch-target byte table from the resolved addresses.
  std::uint8_t* table = space.raw(layout_.bt_table_base, layout_.bt_table_size);
  if (table == nullptr) return fail("load_bt", "branch-target table unmapped");
  std::memset(table, 0, layout_.bt_table_size);
  for (std::uint64_t addr : out.branch_targets) table[addr - out.text_base] = 1;

  // Initialize the runtime slots.
  sgx::MemFault mf;
  bool ok = true;
  ok &= space.write_u64(layout_.ss_ptr_slot, layout_.shadow_base, mf);
  ok &= space.write_u64(layout_.aex_count_addr, 0, mf);
  ok &= space.write_u64(layout_.ssa_addr + sgx::Enclave::kSsaMarkerOffset,
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(codegen::kSsaMarkerValue)),
                        mf);
  // Heap bookkeeping slots inside the data image (producer convention).
  auto heap_ptr_sym = out.symbols.find(codegen::kHeapPtrSymbol);
  auto heap_end_sym = out.symbols.find(codegen::kHeapEndSymbol);
  if (heap_ptr_sym != out.symbols.end())
    ok &= space.write_u64(heap_ptr_sym->second, out.heap_base, mf);
  if (heap_end_sym != out.symbols.end())
    ok &= space.write_u64(heap_end_sym->second, out.heap_end, mf);
  if (!ok) return fail("load_slots", "runtime slot initialization faulted");

  return out;
}

}  // namespace deflection::verifier
