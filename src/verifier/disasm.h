// Just-enough recursive-descent disassembler (trusted, in-TCB).
//
// The paper's clipped-Capstone equivalent: starting from the program entry
// and the loader-provided roots (function symbols + indirect-branch list),
// it follows control flow, deferring direct-branch targets onto a worklist,
// and decodes every reachable instruction exactly once. Verification then
// requires *full* coverage — every byte of the loaded text must belong to
// exactly one decoded instruction — so no bytes can hide from inspection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "isa/decode.h"
#include "verifier/loader.h"

namespace deflection::verifier {

struct Disassembly {
  // Decoded instructions, sorted by address, contiguous over the text.
  std::vector<isa::Instr> instrs;
  // addr -> index into instrs.
  std::map<std::uint64_t, std::size_t> index;

  bool is_boundary(std::uint64_t addr) const { return index.contains(addr); }
};

// Disassembles the loaded text. Fails on: undecodable bytes, branches
// leaving the text, overlapping decodes, or unreachable (uncovered) bytes.
Result<Disassembly> disassemble(const sgx::AddressSpace& space, const LoadedBinary& binary);

// Sharded variant of disassemble() for parallel cold admission: explores
// the same worklist closure on `shards` cooperating threads (each start
// offset is claimed atomically and decoded exactly once) and returns only
// the sorted, text-tiling instruction vector — the boundary map is the
// caller's concern. Returns nullopt on ANY anomaly (undecodable bytes,
// flow leaving the text, coverage gap/overlap): the caller must fall back
// to the serial disassemble() to reproduce its exact error code and
// message. A non-null result is identical to disassemble()'s instrs for
// the same binary, independent of shard count and thread interleaving.
std::optional<std::vector<isa::Instr>> disassemble_shards(const sgx::AddressSpace& space,
                                                          const LoadedBinary& binary,
                                                          int shards);

}  // namespace deflection::verifier
