// Just-enough recursive-descent disassembler (trusted, in-TCB).
//
// The paper's clipped-Capstone equivalent: starting from the program entry
// and the loader-provided roots (function symbols + indirect-branch list),
// it follows control flow, deferring direct-branch targets onto a worklist,
// and decodes every reachable instruction exactly once. Verification then
// requires *full* coverage — every byte of the loaded text must belong to
// exactly one decoded instruction — so no bytes can hide from inspection.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "isa/decode.h"
#include "verifier/loader.h"

namespace deflection::verifier {

struct Disassembly {
  // Decoded instructions, sorted by address, contiguous over the text.
  std::vector<isa::Instr> instrs;
  // addr -> index into instrs.
  std::map<std::uint64_t, std::size_t> index;

  bool is_boundary(std::uint64_t addr) const { return index.contains(addr); }
};

// Disassembles the loaded text. Fails on: undecodable bytes, branches
// leaving the text, overlapping decodes, or unreachable (uncovered) bytes.
Result<Disassembly> disassemble(const sgx::AddressSpace& space, const LoadedBinary& binary);

}  // namespace deflection::verifier
