// Just-enough recursive-descent disassembler (trusted, in-TCB).
//
// The paper's clipped-Capstone equivalent: starting from the program entry
// and the loader-provided roots (function symbols + indirect-branch list),
// it follows control flow, deferring direct-branch targets onto a worklist,
// and decodes every reachable instruction exactly once. Verification then
// requires *full* coverage — every byte of the loaded text must belong to
// exactly one decoded instruction — so no bytes can hide from inspection.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "isa/decode.h"
#include "verifier/loader.h"

namespace deflection::verifier {

struct Disassembly {
  // Decoded instructions, sorted by address, contiguous over the text.
  std::vector<isa::Instr> instrs;
  // addr -> index into instrs.
  std::map<std::uint64_t, std::size_t> index;

  bool is_boundary(std::uint64_t addr) const { return index.contains(addr); }
};

// Disassembles the loaded text. Fails on: undecodable bytes, branches
// leaving the text, overlapping decodes, or unreachable (uncovered) bytes.
Result<Disassembly> disassemble(const sgx::AddressSpace& space, const LoadedBinary& binary);

// Sharded variant of disassemble() for parallel cold admission: explores
// the same worklist closure on `shards` cooperating threads (each start
// offset is claimed atomically and decoded exactly once) and returns only
// the sorted, text-tiling instruction vector — the boundary map is the
// caller's concern. Returns nullopt on ANY anomaly (undecodable bytes,
// flow leaving the text, coverage gap/overlap): the caller must fall back
// to the serial disassemble() to reproduce its exact error code and
// message. A non-null result is identical to disassemble()'s instrs for
// the same binary, independent of shard count and thread interleaving.
std::optional<std::vector<isa::Instr>> disassemble_shards(const sgx::AddressSpace& space,
                                                          const LoadedBinary& binary,
                                                          int shards);

// Incremental variant of disassemble_shards for streaming admission: the
// text arrives front-to-back in a staging buffer behind a watermark, and
// each advance() runs one parallel descent round over the offsets that
// became decodable. Exploration state (the per-offset claim array, the
// deferred worklist of targets past the watermark, the partially tiled
// prefix) persists across rounds, so the union of all rounds is exactly
// the closure disassemble() explores. instrs() exposes the longest
// exactly-tiled prefix — indices into it are FINAL, which is what lets a
// streaming verifier scan it while later text is still in flight.
//
// Same fallback contract as disassemble_shards: any anomaly (undecodable
// bytes, flow leaving the text, gap/overlap at finish) poisons the object
// and the caller must rerun the serial path for the exact error.
class StreamingDisassembler {
 public:
  // `text` is the FULL-SIZE staging buffer (binary.text_size bytes);
  // bytes below the advancing watermark must be final when advance() runs.
  StreamingDisassembler(BytesView text, const LoadedBinary& binary, int shards);

  // All staging bytes below `watermark` are now final. Only instructions
  // that provably fit below the watermark are claimed (start offset at
  // least kMaxInstrLen short of it); the rest defer to a later round.
  // Returns false once the descent hit an anomaly.
  bool advance(std::size_t watermark);
  // Stream complete: drains the worklist to closure and enforces the
  // exact-tiling coverage rule. False = fall back to serial disassemble().
  bool finish();

  // The exactly-tiled prefix, sorted by address, contiguous from text_base.
  const std::vector<isa::Instr>& instrs() const { return instrs_; }
  bool failed() const { return anomaly_; }

  // Upper bound on any DX64 instruction encoding (Layout::MI32).
  static constexpr std::size_t kMaxInstrLen = 11;

 private:
  struct Rec {
    std::uint64_t addr;
    isa::Instr ins;
  };
  void run_round(std::size_t claim_limit);

  BytesView text_;
  std::uint64_t base_;
  std::uint64_t size_;
  int shards_;
  std::vector<std::atomic<std::uint8_t>> claimed_;
  std::vector<std::uint64_t> deferred_;  // absolute addrs past the watermark
  std::vector<Rec> pending_;             // decoded, not yet tiled (sorted)
  std::size_t pending_head_ = 0;
  std::vector<isa::Instr> instrs_;
  std::uint64_t cursor_;  // next address the tiled prefix must cover
  bool anomaly_ = false;
};

}  // namespace deflection::verifier
