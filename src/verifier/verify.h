// The policy-compliance verifier and immediate rewriter (trusted, in-TCB).
//
// After the loader rebases the target binary, the verifier:
//   1. disassembles it (recursive descent, full coverage required),
//   2. matches every security-annotation pattern the binary's claimed
//      policy mask implies — both the classic one-op forms and the
//      optimizer's compressed forms (widened store guards covering a run
//      of stores, merged multi-write RSP guards, elided leaf functions
//      with a justified bare RET) — rejecting any guardable operation
//      (store, explicit RSP write, indirect branch, RET) that is not
//      protected by a correctly-shaped annotation,
//   3. checks control-flow hygiene: no branch may land inside an annotation
//      pattern, every call target carries the required entry sequence
//      (P6 probe, P5 shadow-stack prologue or verified leaf entry), the
//      path-sensitive SSA-probe gap bound holds along every control path,
//      and the violation stub is well-formed,
//   4. records the addresses of every placeholder immediate.
//
// If (and only if) verification succeeds, rewrite_immediates() patches the
// placeholders with the real loaded addresses — the paper's "Imm rewriter".
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "codegen/annotations.h"
#include "verifier/disasm.h"

namespace deflection::verifier {

enum class PatchKind {
  StoreLo,
  StoreHi,
  StackLo,
  StackHi,
  TextBase,
  TextSize,
  BtTable,
  SsPtr,
  SsBase,
  SsLimit,
  SsaMarker,
  AexCount,
};

struct PatchSite {
  std::uint64_t field_addr = 0;  // address of the imm64 field to rewrite
  PatchKind kind = PatchKind::StoreLo;
};

struct VerifyConfig {
  // Policies the data owner requires; the binary's claimed mask must cover
  // them (and everything claimed is verified).
  PolicySet required;
  // Largest AEX-abort threshold a P6 probe may bake in.
  std::int32_t max_aex_threshold = 4096;
  // Maximum instructions between successive P6 probes.
  int max_probe_gap = codegen::kMaxProbeGap;
  // OCall numbers the enclave configuration permits (policy P0 surface).
  std::set<std::uint8_t> allowed_ocalls = {codegen::kOcallSend, codegen::kOcallRecv,
                                           codegen::kOcallPrint};
  // Defense in depth: additionally decode the text with a plain linear
  // sweep and require it to agree with the recursive-descent result
  // instruction-for-instruction. With full coverage enforced the two must
  // coincide; a disagreement indicates a decoder bug being exploited.
  bool cross_check_linear = true;
  // Admission parallelism: number of shards the cold verification pass
  // (recursive-descent disassembly, the linear cross-check, and the
  // per-instruction policy checks) is split across. 1 = the serial
  // reference pass. Any value produces a VerifyReport byte-identical to
  // serial — error selection included, because the sharded pass re-runs
  // the serial verifier whenever any shard reports a problem. Deliberately
  // NOT part of verify_config_fingerprint() or the measured consumer
  // image: it cannot change a verdict, so admission-cache keys and
  // MRENCLAVE stay stable across worker counts. Ignored (serial) when a
  // custom_check is installed, which needs the full Disassembly structure.
  int workers = 1;
  // Plugin hook (paper Sec. V-A: validation passes plugged into the
  // loader): runs over the full disassembly after the built-in policy
  // checks pass. Lets a deployment enforce on-demand policies — e.g. an
  // emergency rule banning a vulnerable instruction pattern — without
  // changing the core verifier.
  std::function<Status(const Disassembly&, const LoadedBinary&)> custom_check;
};

struct VerifyReport {
  std::vector<PatchSite> patches;
  std::size_t instructions = 0;
  int store_guards = 0;
  int rsp_guards = 0;
  int shadow_prologues = 0;
  int shadow_epilogues = 0;
  int indirect_guards = 0;
  int aex_probes = 0;
};

// Verifies the loaded binary. Does not modify memory.
Result<VerifyReport> verify(const sgx::AddressSpace& space, const LoadedBinary& binary,
                            const VerifyConfig& config);

// Policy verification over a precomputed disassembly — the back half of
// verify(), exposed so validation plugins and tests can drive the policy
// checks against a Disassembly they control (e.g. to exercise the
// index-divergence error paths that a full-coverage disassembly rules out
// by construction).
Result<VerifyReport> verify_disassembly(const Disassembly& dis, const LoadedBinary& binary,
                                        const VerifyConfig& config);

// Patches the placeholder immediates recorded by verify(). Must only be
// called with a report produced for the same loaded binary.
Status rewrite_immediates(sgx::AddressSpace& space, const LoadedBinary& binary,
                          const VerifyReport& report);

// Incremental (pipelined) cold verification for streaming admission. The
// caller stages relocated text into a full-size buffer front-to-back and
// calls advance(watermark) as bytes become final; each advance overlaps
// recursive descent, the linear cross-check, and the annotation-pattern
// scan (all sharded across config.workers) with delivery, so by the time
// the last byte lands finish() only has the cheap tail phases left.
//
// Same fallback contract as the sharded driver inside verify():
// advance()/finish() report failure on ANY anomaly — an undecodable byte,
// a scan mismatch, a policy violation — and the caller must rerun the
// serial verify() against the loaded address space to reproduce its exact
// error code and message. A non-null finish() report is byte-identical to
// verify()'s for the same bytes. Configs with a custom_check must take
// the serial path instead (the plugin needs the full Disassembly).
class StreamingVerifier {
 public:
  // `text` is the FULL-SIZE staging buffer (binary.text_size bytes) whose
  // bytes below each advance() watermark are final; `binary` and `config`
  // are copied and may die after the constructor returns.
  StreamingVerifier(BytesView text, const LoadedBinary& binary,
                    const VerifyConfig& config);
  ~StreamingVerifier();
  StreamingVerifier(const StreamingVerifier&) = delete;
  StreamingVerifier& operator=(const StreamingVerifier&) = delete;

  // All staging bytes below `watermark` are now final: runs one pipelined
  // round (descent + cross-check + scan). False once poisoned.
  bool advance(std::size_t watermark);
  // Stream complete: drains the descent, runs the remaining phases, and
  // returns the merged report — or nullopt (fall back to serial verify()).
  std::optional<VerifyReport> finish();
  bool failed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deflection::verifier
