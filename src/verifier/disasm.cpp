#include "verifier/disasm.h"

#include <algorithm>
#include <atomic>

#include "support/parallel.h"

namespace deflection::verifier {

Result<Disassembly> disassemble(const sgx::AddressSpace& space,
                                const LoadedBinary& binary) {
  auto fail = [](const std::string& code, const std::string& msg) {
    return Result<Disassembly>::fail(code, msg);
  };
  const std::uint64_t base = binary.text_base;
  const std::uint64_t size = binary.text_size;
  if (size == 0) return fail("disasm_empty", "empty text");
  const std::uint8_t* raw = space.raw(base, size);
  if (raw == nullptr) return fail("disasm_unmapped", "text not mapped");
  BytesView text(raw, size);

  std::map<std::uint64_t, isa::Instr> decoded;
  std::vector<std::uint64_t> worklist;
  auto push = [&](std::uint64_t addr) {
    if (!decoded.contains(addr)) worklist.push_back(addr);
  };

  push(binary.entry);
  for (std::uint64_t f : binary.function_addrs) push(f);
  for (std::uint64_t t : binary.branch_targets) push(t);

  while (!worklist.empty()) {
    std::uint64_t addr = worklist.back();
    worklist.pop_back();
    // Follow straight-line flow from addr (recursive descent with an
    // explicit worklist for branch targets).
    while (!decoded.contains(addr)) {
      if (addr < base || addr >= base + size)
        return fail("disasm_oob", "control flow leaves the text at " +
                                      std::to_string(addr));
      auto r = isa::decode_one(text, addr - base, base);
      if (!r.is_ok())
        return fail(r.code(), r.message() + " at " + std::to_string(addr));
      isa::Instr ins = r.take();
      decoded.emplace(addr, ins);
      if (ins.is_direct_branch()) {
        std::uint64_t target = ins.branch_target();
        if (target < base || target >= base + size)
          return fail("disasm_target_oob", "branch target outside text");
        push(target);
      }
      if (ins.ends_flow()) break;
      addr += ins.length;
    }
  }

  // Coverage: decoded instructions must tile the text exactly.
  Disassembly out;
  out.instrs.reserve(decoded.size());
  std::uint64_t cursor = base;
  for (auto& [addr, ins] : decoded) {
    if (addr != cursor) {
      if (addr < cursor)
        return fail("disasm_overlap", "overlapping instructions at " +
                                          std::to_string(addr));
      return fail("disasm_gap",
                  "unreachable bytes at " + std::to_string(cursor));
    }
    cursor += ins.length;
    out.index.emplace(addr, out.instrs.size());
    out.instrs.push_back(ins);
  }
  if (cursor != base + size)
    return fail("disasm_gap", "unreachable bytes at tail");
  return out;
}

std::optional<std::vector<isa::Instr>> disassemble_shards(const sgx::AddressSpace& space,
                                                          const LoadedBinary& binary,
                                                          int shards) {
  const std::uint64_t base = binary.text_base;
  const std::uint64_t size = binary.text_size;
  if (size == 0) return std::nullopt;
  const std::uint8_t* raw = space.raw(base, size);
  if (raw == nullptr) return std::nullopt;
  BytesView text(raw, size);

  // Shared exploration roots; shards pull from them through one cursor and
  // grow purely thread-local worklists from discovered branch targets.
  std::vector<std::uint64_t> roots;
  roots.reserve(1 + binary.function_addrs.size() + binary.branch_targets.size());
  roots.push_back(binary.entry);
  for (std::uint64_t f : binary.function_addrs) roots.push_back(f);
  for (std::uint64_t t : binary.branch_targets) roots.push_back(t);

  // One claim flag per text offset: whichever shard wins the exchange owns
  // (and decodes) the instruction starting there, so every reachable start
  // offset is decoded exactly once no matter how threads interleave.
  std::vector<std::atomic<std::uint8_t>> claimed(size);
  std::atomic<std::size_t> root_cursor{0};
  std::atomic<bool> anomaly{false};

  struct Rec {
    std::uint64_t addr;
    isa::Instr ins;
  };
  std::vector<std::vector<Rec>> decoded(static_cast<std::size_t>(shards));

  parallel::run_shards(shards, [&](int shard) {
    auto& local = decoded[static_cast<std::size_t>(shard)];
    local.reserve(size / 6 / static_cast<std::size_t>(shards) + 16);
    std::vector<std::uint64_t> worklist;
    for (;;) {
      std::uint64_t addr;
      if (!worklist.empty()) {
        addr = worklist.back();
        worklist.pop_back();
      } else {
        std::size_t i = root_cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= roots.size()) break;
        addr = roots[i];
      }
      // Straight-line flow from addr, stopping where another shard already
      // owns the tail (it decodes the rest identically).
      for (;;) {
        if (addr < base || addr >= base + size) {
          anomaly.store(true, std::memory_order_relaxed);
          break;
        }
        if (claimed[addr - base].exchange(1, std::memory_order_relaxed)) break;
        auto r = isa::decode_one(text, addr - base, base);
        if (!r.is_ok()) {
          anomaly.store(true, std::memory_order_relaxed);
          break;
        }
        isa::Instr ins = r.take();
        local.push_back(Rec{addr, ins});
        if (ins.is_direct_branch()) {
          std::uint64_t target = ins.branch_target();
          if (target < base || target >= base + size) {
            anomaly.store(true, std::memory_order_relaxed);
            break;
          }
          if (!claimed[target - base].load(std::memory_order_relaxed))
            worklist.push_back(target);
        }
        if (ins.ends_flow()) break;
        addr += ins.length;
      }
      if (anomaly.load(std::memory_order_relaxed)) break;
    }
  });
  if (anomaly.load(std::memory_order_relaxed)) return std::nullopt;

  // Deterministic merge: the union of the shard-local records is the same
  // reachability closure the serial pass decodes, so sorting by address
  // erases every trace of the traversal order.
  std::size_t total = 0;
  for (const auto& v : decoded) total += v.size();
  std::vector<Rec> all;
  all.reserve(total);
  for (const auto& v : decoded) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Rec& a, const Rec& b) { return a.addr < b.addr; });

  // Coverage: the same exact-tiling rule disassemble() enforces.
  std::vector<isa::Instr> out;
  out.reserve(all.size());
  std::uint64_t cursor = base;
  for (const Rec& rec : all) {
    if (rec.addr != cursor) return std::nullopt;  // gap or overlap
    cursor += rec.ins.length;
    out.push_back(rec.ins);
  }
  if (cursor != base + size) return std::nullopt;  // unreachable tail
  return out;
}

StreamingDisassembler::StreamingDisassembler(BytesView text, const LoadedBinary& binary,
                                             int shards)
    : text_(text),
      base_(binary.text_base),
      size_(binary.text_size),
      shards_(shards < 1 ? 1 : shards),
      claimed_(binary.text_size),
      cursor_(binary.text_base) {
  if (size_ == 0 || text.size() != size_) {
    anomaly_ = true;
    return;
  }
  deferred_.reserve(1 + binary.function_addrs.size() + binary.branch_targets.size());
  deferred_.push_back(binary.entry);
  for (std::uint64_t f : binary.function_addrs) deferred_.push_back(f);
  for (std::uint64_t t : binary.branch_targets) deferred_.push_back(t);
}

// One parallel descent round: explore every deferred address whose offset
// is below `claim_limit`, re-deferring anything the round cannot prove
// fully below the watermark yet.
void StreamingDisassembler::run_round(std::size_t claim_limit) {
  std::vector<std::uint64_t> ready;
  {
    std::vector<std::uint64_t> still;
    still.reserve(deferred_.size());
    for (std::uint64_t addr : deferred_) {
      if (addr < base_ || addr >= base_ + size_) {
        anomaly_ = true;  // serial: disasm_oob / disasm_target_oob
        return;
      }
      if (addr - base_ < claim_limit)
        ready.push_back(addr);
      else
        still.push_back(addr);
    }
    deferred_.swap(still);
  }
  if (ready.empty()) return;

  std::atomic<std::size_t> ready_cursor{0};
  std::atomic<bool> anomaly{false};
  std::vector<std::vector<Rec>> decoded(static_cast<std::size_t>(shards_));
  std::vector<std::vector<std::uint64_t>> defer(static_cast<std::size_t>(shards_));

  parallel::run_shards(shards_, [&](int shard) {
    auto& local = decoded[static_cast<std::size_t>(shard)];
    auto& local_defer = defer[static_cast<std::size_t>(shard)];
    std::vector<std::uint64_t> worklist;
    for (;;) {
      std::uint64_t addr;
      if (!worklist.empty()) {
        addr = worklist.back();
        worklist.pop_back();
      } else {
        std::size_t i = ready_cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= ready.size()) break;
        addr = ready[i];
      }
      for (;;) {
        if (addr < base_ || addr >= base_ + size_) {
          anomaly.store(true, std::memory_order_relaxed);
          break;
        }
        if (addr - base_ >= claim_limit) {
          // Not provably final yet: park it for a later round.
          local_defer.push_back(addr);
          break;
        }
        if (claimed_[addr - base_].exchange(1, std::memory_order_relaxed)) break;
        auto r = isa::decode_one(text_, addr - base_, base_);
        if (!r.is_ok()) {
          anomaly.store(true, std::memory_order_relaxed);
          break;
        }
        isa::Instr ins = r.take();
        local.push_back(Rec{addr, ins});
        if (ins.is_direct_branch()) {
          std::uint64_t target = ins.branch_target();
          if (target < base_ || target >= base_ + size_) {
            anomaly.store(true, std::memory_order_relaxed);
            break;
          }
          if (target - base_ >= claim_limit)
            local_defer.push_back(target);
          else if (!claimed_[target - base_].load(std::memory_order_relaxed))
            worklist.push_back(target);
        }
        if (ins.ends_flow()) break;
        addr += ins.length;
      }
      if (anomaly.load(std::memory_order_relaxed)) break;
    }
  });
  if (anomaly.load(std::memory_order_relaxed)) {
    anomaly_ = true;
    return;
  }
  for (const auto& d : defer) deferred_.insert(deferred_.end(), d.begin(), d.end());

  // Merge the round's records into the sorted pending queue, then extend
  // the tiled prefix as far as the records are contiguous.
  std::size_t fresh = 0;
  for (const auto& v : decoded) fresh += v.size();
  if (fresh == 0) return;
  std::size_t mid = pending_.size();
  pending_.reserve(mid + fresh);
  for (const auto& v : decoded) pending_.insert(pending_.end(), v.begin(), v.end());
  auto by_addr = [](const Rec& a, const Rec& b) { return a.addr < b.addr; };
  std::sort(pending_.begin() + static_cast<std::ptrdiff_t>(mid), pending_.end(), by_addr);
  std::inplace_merge(pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_),
                     pending_.begin() + static_cast<std::ptrdiff_t>(mid), pending_.end(),
                     by_addr);

  while (pending_head_ < pending_.size()) {
    const Rec& rec = pending_[pending_head_];
    if (rec.addr != cursor_) {
      if (rec.addr < cursor_) anomaly_ = true;  // overlap; gaps may still fill
      break;
    }
    cursor_ += rec.ins.length;
    instrs_.push_back(rec.ins);
    ++pending_head_;
  }
  if (pending_head_ > 4096) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
  }
}

bool StreamingDisassembler::advance(std::size_t watermark) {
  if (anomaly_) return false;
  std::size_t claim_limit =
      watermark >= size_ ? size_
                         : (watermark > kMaxInstrLen - 1 ? watermark - (kMaxInstrLen - 1) : 0);
  run_round(claim_limit);
  return !anomaly_;
}

bool StreamingDisassembler::finish() {
  if (anomaly_) return false;
  // With the watermark at the end nothing defers, so one round reaches the
  // full closure of everything still parked.
  run_round(size_);
  if (anomaly_) return false;
  if (pending_head_ != pending_.size() || cursor_ != base_ + size_ || !deferred_.empty()) {
    anomaly_ = true;  // gap/overlap/unreachable tail: serial owns the error
    return false;
  }
  return true;
}

}  // namespace deflection::verifier
