#include "verifier/disasm.h"

namespace deflection::verifier {

Result<Disassembly> disassemble(const sgx::AddressSpace& space,
                                const LoadedBinary& binary) {
  auto fail = [](const std::string& code, const std::string& msg) {
    return Result<Disassembly>::fail(code, msg);
  };
  const std::uint64_t base = binary.text_base;
  const std::uint64_t size = binary.text_size;
  if (size == 0) return fail("disasm_empty", "empty text");
  const std::uint8_t* raw = space.raw(base, size);
  if (raw == nullptr) return fail("disasm_unmapped", "text not mapped");
  BytesView text(raw, size);

  std::map<std::uint64_t, isa::Instr> decoded;
  std::vector<std::uint64_t> worklist;
  auto push = [&](std::uint64_t addr) {
    if (!decoded.contains(addr)) worklist.push_back(addr);
  };

  push(binary.entry);
  for (std::uint64_t f : binary.function_addrs) push(f);
  for (std::uint64_t t : binary.branch_targets) push(t);

  while (!worklist.empty()) {
    std::uint64_t addr = worklist.back();
    worklist.pop_back();
    // Follow straight-line flow from addr (recursive descent with an
    // explicit worklist for branch targets).
    while (!decoded.contains(addr)) {
      if (addr < base || addr >= base + size)
        return fail("disasm_oob", "control flow leaves the text at " +
                                      std::to_string(addr));
      auto r = isa::decode_one(text, addr - base, base);
      if (!r.is_ok())
        return fail(r.code(), r.message() + " at " + std::to_string(addr));
      isa::Instr ins = r.take();
      decoded.emplace(addr, ins);
      if (ins.is_direct_branch()) {
        std::uint64_t target = ins.branch_target();
        if (target < base || target >= base + size)
          return fail("disasm_target_oob", "branch target outside text");
        push(target);
      }
      if (ins.ends_flow()) break;
      addr += ins.length;
    }
  }

  // Coverage: decoded instructions must tile the text exactly.
  Disassembly out;
  out.instrs.reserve(decoded.size());
  std::uint64_t cursor = base;
  for (auto& [addr, ins] : decoded) {
    if (addr != cursor) {
      if (addr < cursor)
        return fail("disasm_overlap", "overlapping instructions at " +
                                          std::to_string(addr));
      return fail("disasm_gap",
                  "unreachable bytes at " + std::to_string(cursor));
    }
    cursor += ins.length;
    out.index.emplace(addr, out.instrs.size());
    out.instrs.push_back(ins);
  }
  if (cursor != base + size)
    return fail("disasm_gap", "unreachable bytes at tail");
  return out;
}

}  // namespace deflection::verifier
