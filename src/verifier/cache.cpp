#include "verifier/cache.h"

namespace deflection::verifier {

std::optional<crypto::Digest> verify_config_fingerprint(const VerifyConfig& config) {
  if (config.custom_check) return std::nullopt;
  Bytes buf;
  ByteWriter w(buf);
  w.str("deflection-verify-config-1");
  w.u32(config.required.mask());
  w.u32(static_cast<std::uint32_t>(config.max_aex_threshold));
  w.u32(static_cast<std::uint32_t>(config.max_probe_gap));
  w.u8(config.cross_check_linear ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.allowed_ocalls.size()));
  for (std::uint8_t n : config.allowed_ocalls) w.u8(n);
  return crypto::Sha256::hash(buf);
}

std::optional<VerifyReport> VerificationCache::lookup(const crypto::Digest& binary_digest,
                                                      const LoadedBinary& binary,
                                                      const VerifyConfig& config) {
  auto fp = verify_config_fingerprint(config);
  std::lock_guard lock(mutex_);
  if (!fp.has_value()) {
    ++stats_.bypasses;
    return std::nullopt;
  }
  auto it = entries_.find(Key{binary_digest, binary.policies.mask(), *fp});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const Entry& entry = it->second;
  // Fail closed: the digest implies the text size, but the cache does not
  // trust its caller to have hashed the bytes it loaded — any observable
  // disagreement means this entry does not apply and the full verifier runs.
  if (entry.text_size != binary.text_size) {
    ++stats_.misses;
    return std::nullopt;
  }
  VerifyReport report = entry.report;
  for (PatchSite& site : report.patches) {
    if (site.field_addr + 8 > binary.text_size) {
      ++stats_.misses;
      return std::nullopt;
    }
    site.field_addr += binary.text_base;
  }
  ++stats_.hits;
  stats_.verify_ns_saved += entry.verify_ns;
  return report;
}

void VerificationCache::insert(const crypto::Digest& binary_digest,
                               const LoadedBinary& binary, const VerifyConfig& config,
                               const VerifyReport& report, std::uint64_t verify_ns) {
  auto fp = verify_config_fingerprint(config);
  if (!fp.has_value()) return;  // unfingerprintable configs are never cached
  Entry entry;
  entry.report = report;
  entry.text_size = binary.text_size;
  entry.verify_ns = verify_ns;
  for (PatchSite& site : entry.report.patches) {
    // A verifier-produced report only references the loaded text; refuse to
    // cache anything else rather than store a site that cannot rebase.
    if (site.field_addr < binary.text_base ||
        site.field_addr + 8 > binary.text_base + binary.text_size)
      return;
    site.field_addr -= binary.text_base;
  }
  std::lock_guard lock(mutex_);
  entries_[Key{binary_digest, binary.policies.mask(), *fp}] = std::move(entry);
  ++stats_.insertions;
}

CacheStats VerificationCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t VerificationCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace deflection::verifier
