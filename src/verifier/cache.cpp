#include "verifier/cache.h"

#include <condition_variable>

namespace deflection::verifier {

std::optional<crypto::Digest> verify_config_fingerprint(const VerifyConfig& config) {
  if (config.custom_check) return std::nullopt;
  Bytes buf;
  ByteWriter w(buf);
  w.str("deflection-verify-config-1");
  w.u32(config.required.mask());
  w.u32(static_cast<std::uint32_t>(config.max_aex_threshold));
  w.u32(static_cast<std::uint32_t>(config.max_probe_gap));
  w.u8(config.cross_check_linear ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.allowed_ocalls.size()));
  for (std::uint8_t n : config.allowed_ocalls) w.u8(n);
  // config.workers is deliberately absent: the shard count cannot change a
  // verdict (the sharded pass falls back to serial on any divergence), so
  // admissions with different worker counts share cache entries.
  return crypto::Sha256::hash(buf);
}

// One in-flight cold verification: the leader resolves it exactly once,
// waiters block on cv until done. Failure keeps ok=false and carries the
// leader's error; nothing about a failure is ever stored in entries_.
struct VerificationCache::Inflight {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  Entry entry;  // valid when ok
  Status error = Status::ok();
};

std::optional<VerificationCache::Entry> VerificationCache::make_entry(
    const LoadedBinary& binary, const VerifyReport& report, std::uint64_t verify_ns) {
  Entry entry;
  entry.report = report;
  entry.text_size = binary.text_size;
  entry.verify_ns = verify_ns;
  for (PatchSite& site : entry.report.patches) {
    // A verifier-produced report only references the loaded text; refuse to
    // cache anything else rather than store a site that cannot rebase.
    if (site.field_addr < binary.text_base ||
        site.field_addr + 8 > binary.text_base + binary.text_size)
      return std::nullopt;
    site.field_addr -= binary.text_base;
  }
  return entry;
}

std::optional<VerifyReport> VerificationCache::rebase(const Entry& entry,
                                                      const LoadedBinary& binary) {
  // Fail closed: the digest implies the text size, but the cache does not
  // trust its caller to have hashed the bytes it loaded — any observable
  // disagreement means this entry does not apply and the full verifier runs.
  if (entry.text_size != binary.text_size) return std::nullopt;
  VerifyReport report = entry.report;
  for (PatchSite& site : report.patches) {
    if (site.field_addr + 8 > binary.text_size) return std::nullopt;
    site.field_addr += binary.text_base;
  }
  return report;
}

std::optional<VerifyReport> VerificationCache::lookup(const crypto::Digest& binary_digest,
                                                      const LoadedBinary& binary,
                                                      const VerifyConfig& config) {
  auto fp = verify_config_fingerprint(config);
  std::lock_guard lock(mutex_);
  if (!fp.has_value()) {
    ++stats_.bypasses;
    return std::nullopt;
  }
  auto it = entries_.find(Key{binary_digest, binary.policies.mask(), *fp});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  auto report = rebase(it->second, binary);
  if (!report.has_value()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.verify_ns_saved += it->second.verify_ns;
  return report;
}

void VerificationCache::insert(const crypto::Digest& binary_digest,
                               const LoadedBinary& binary, const VerifyConfig& config,
                               const VerifyReport& report, std::uint64_t verify_ns) {
  auto fp = verify_config_fingerprint(config);
  if (!fp.has_value()) return;  // unfingerprintable configs are never cached
  auto entry = make_entry(binary, report, verify_ns);
  if (!entry.has_value()) return;
  std::lock_guard lock(mutex_);
  entries_[Key{binary_digest, binary.policies.mask(), *fp}] = std::move(*entry);
  ++stats_.insertions;
}

VerificationCache::Admission VerificationCache::begin_admission(
    const crypto::Digest& binary_digest, const LoadedBinary& binary,
    const VerifyConfig& config) {
  Admission adm;
  auto fp = verify_config_fingerprint(config);
  Key key;
  std::shared_ptr<Inflight> rec;
  {
    std::lock_guard lock(mutex_);
    if (!fp.has_value()) {
      ++stats_.bypasses;
      return adm;  // Bypass: caller verifies alone, nothing recorded
    }
    key = Key{binary_digest, binary.policies.mask(), *fp};
    if (auto it = entries_.find(key); it != entries_.end()) {
      if (auto report = rebase(it->second, binary)) {
        ++stats_.hits;
        stats_.verify_ns_saved += it->second.verify_ns;
        adm.role = Admission::Role::Hit;
        adm.report = std::move(report);
        return adm;
      }
      // Unrebasable entry: same as lookup(), a miss — but still
      // single-flight below, so a stampede on the mismatched key does not
      // multiply verifications.
    }
    auto in = inflight_.find(key);
    if (in == inflight_.end()) {
      // Leader: counts as the miss that runs the full verifier.
      ++stats_.misses;
      rec = std::make_shared<Inflight>();
      inflight_.emplace(key, rec);
      adm.role = Admission::Role::Leader;
      adm.ticket.cache_ = this;
      adm.ticket.rec_ = std::move(rec);
      adm.ticket.key_ = key;
      return adm;
    }
    rec = in->second;
    ++stats_.coalesced;
    ++waiting_;
  }

  // Waiter: block until the leader resolves its ticket. rec outlives the
  // map entry (shared_ptr), so a leader that erases the key first is fine.
  {
    std::unique_lock wait_lock(rec->m);
    rec->cv.wait(wait_lock, [&] { return rec->done; });
  }
  std::lock_guard lock(mutex_);
  --waiting_;
  adm.role = Admission::Role::Waiter;
  if (!rec->ok) {
    adm.failure = rec->error;
    return adm;
  }
  if (auto report = rebase(rec->entry, binary)) {
    stats_.verify_ns_saved += rec->entry.verify_ns;
    adm.report = std::move(report);
    return adm;
  }
  // The leader's verdict does not fit this enclave's text (fail-closed
  // rebase refusal): verify alone rather than trust it.
  adm.role = Admission::Role::Bypass;
  return adm;
}

std::size_t VerificationCache::inflight_waiters() const {
  std::lock_guard lock(mutex_);
  return waiting_;
}

VerificationCache::AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : cache_(other.cache_), rec_(std::move(other.rec_)), key_(other.key_) {
  other.cache_ = nullptr;
  other.rec_.reset();
}

VerificationCache::AdmissionTicket& VerificationCache::AdmissionTicket::operator=(
    AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr && rec_ != nullptr)
      fail(Status::fail("admission_abandoned",
                        "admission leader replaced its ticket unresolved"));
    cache_ = other.cache_;
    rec_ = std::move(other.rec_);
    key_ = other.key_;
    other.cache_ = nullptr;
    other.rec_.reset();
  }
  return *this;
}

VerificationCache::AdmissionTicket::~AdmissionTicket() {
  if (cache_ != nullptr && rec_ != nullptr)
    fail(Status::fail("admission_abandoned",
                      "admission leader exited without publishing a verdict"));
}

void VerificationCache::AdmissionTicket::publish(const LoadedBinary& binary,
                                                 const VerifyReport& report,
                                                 std::uint64_t verify_ns) {
  if (cache_ == nullptr || rec_ == nullptr) return;
  auto entry = make_entry(binary, report, verify_ns);
  {
    std::lock_guard lock(cache_->mutex_);
    if (entry.has_value()) {
      cache_->entries_[key_] = *entry;
      ++cache_->stats_.insertions;
    }
    cache_->inflight_.erase(key_);
  }
  {
    std::lock_guard lock(rec_->m);
    rec_->done = true;
    rec_->ok = entry.has_value();
    if (entry.has_value())
      rec_->entry = std::move(*entry);
    else
      rec_->error = Status::fail("cache_unrebasable",
                                 "verified report references sites outside the text");
  }
  rec_->cv.notify_all();
  cache_ = nullptr;
  rec_.reset();
}

void VerificationCache::AdmissionTicket::fail(Status error) {
  if (cache_ == nullptr || rec_ == nullptr) return;
  {
    // Failures are never cached: dropping the in-flight record is the whole
    // negative-result story — the next admission of this key elects a new
    // leader and re-verifies.
    std::lock_guard lock(cache_->mutex_);
    cache_->inflight_.erase(key_);
  }
  {
    std::lock_guard lock(rec_->m);
    rec_->done = true;
    rec_->ok = false;
    rec_->error = std::move(error);
  }
  rec_->cv.notify_all();
  cache_ = nullptr;
  rec_.reset();
}

CacheStats VerificationCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t VerificationCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace deflection::verifier
