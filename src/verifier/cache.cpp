#include "verifier/cache.h"

#include <condition_variable>

namespace deflection::verifier {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  bypasses += other.bypasses;
  insertions += other.insertions;
  verify_ns_saved += other.verify_ns_saved;
  coalesced += other.coalesced;
  evictions += other.evictions;
  parent_hits += other.parent_hits;
  preloads += other.preloads;
  return *this;
}

std::optional<crypto::Digest> verify_config_fingerprint(const VerifyConfig& config) {
  if (config.custom_check) return std::nullopt;
  Bytes buf;
  ByteWriter w(buf);
  w.str("deflection-verify-config-1");
  w.u32(config.required.mask());
  w.u32(static_cast<std::uint32_t>(config.max_aex_threshold));
  w.u32(static_cast<std::uint32_t>(config.max_probe_gap));
  w.u8(config.cross_check_linear ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.allowed_ocalls.size()));
  for (std::uint8_t n : config.allowed_ocalls) w.u8(n);
  // config.workers is deliberately absent: the shard count cannot change a
  // verdict (the sharded pass falls back to serial on any divergence), so
  // admissions with different worker counts share cache entries.
  return crypto::Sha256::hash(buf);
}

// One in-flight cold verification: the leader resolves it exactly once,
// waiters block on cv until done. Failure keeps ok=false and carries the
// leader's error; nothing about a failure is ever stored in entries_.
struct VerificationCache::Inflight {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  Entry entry;  // valid when ok
  Status error = Status::ok();
};

std::optional<VerificationCache::Entry> VerificationCache::make_entry(
    const LoadedBinary& binary, const VerifyReport& report, std::uint64_t verify_ns) {
  Entry entry;
  entry.report = report;
  entry.text_size = binary.text_size;
  entry.verify_ns = verify_ns;
  for (PatchSite& site : entry.report.patches) {
    // A verifier-produced report only references the loaded text; refuse to
    // cache anything else rather than store a site that cannot rebase.
    if (site.field_addr < binary.text_base ||
        site.field_addr + 8 > binary.text_base + binary.text_size)
      return std::nullopt;
    site.field_addr -= binary.text_base;
  }
  return entry;
}

bool VerificationCache::portable_sites_ok(const PortableEntry& entry) {
  for (const PatchSite& site : entry.report.patches) {
    // Subtraction form so a field_addr near UINT64_MAX cannot wrap past the
    // `+ 8` — oversized offsets from a tampered store must fail, not alias.
    if (site.field_addr > entry.text_size ||
        entry.text_size - site.field_addr < 8)
      return false;
  }
  return true;
}

void VerificationCache::touch_locked(const Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void VerificationCache::store_locked(const Key& key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    entry.lru = it->second.lru;
    it->second = std::move(entry);
    touch_locked(it->second);
    return;
  }
  if (options_.max_entries > 0 && entries_.size() >= options_.max_entries) {
    // Evict the least-recently-used entry. Only resident verdicts are
    // displaced; in-flight admissions are unaffected, and the evicted key's
    // next admission is an ordinary cold miss.
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  entries_.emplace(key, std::move(entry));
}

void VerificationCache::set_parent(std::shared_ptr<VerificationCache> parent) {
  if (parent.get() == this) return;  // a self-parent would deadlock
  std::lock_guard lock(mutex_);
  parent_ = std::move(parent);
}

std::optional<VerificationCache::Entry> VerificationCache::parent_peek(const Key& key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;  // no miss counted: no verifier runs
  touch_locked(it->second);
  ++stats_.hits;
  stats_.verify_ns_saved += it->second.verify_ns;
  return it->second;
}

void VerificationCache::parent_put(const Key& key, const Entry& entry) {
  std::lock_guard lock(mutex_);
  store_locked(key, entry);
  ++stats_.insertions;
}

std::vector<PortableEntry> VerificationCache::export_entries() const {
  std::lock_guard lock(mutex_);
  std::vector<PortableEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    PortableEntry e;
    e.binary = key.binary;
    e.policy_mask = key.policy_mask;
    e.config = key.config;
    e.report = entry.report;
    e.text_size = entry.text_size;
    e.verify_ns = entry.verify_ns;
    out.push_back(std::move(e));
  }
  return out;
}

bool VerificationCache::import_entry(const PortableEntry& entry) {
  if (!portable_sites_ok(entry)) return false;
  Entry stored;
  stored.report = entry.report;
  stored.text_size = entry.text_size;
  stored.verify_ns = entry.verify_ns;
  std::lock_guard lock(mutex_);
  store_locked(Key{entry.binary, entry.policy_mask, entry.config}, std::move(stored));
  ++stats_.preloads;
  return true;
}

std::optional<VerifyReport> VerificationCache::rebase(const Entry& entry,
                                                      const LoadedBinary& binary) {
  // Fail closed: the digest implies the text size, but the cache does not
  // trust its caller to have hashed the bytes it loaded — any observable
  // disagreement means this entry does not apply and the full verifier runs.
  if (entry.text_size != binary.text_size) return std::nullopt;
  VerifyReport report = entry.report;
  for (PatchSite& site : report.patches) {
    if (site.field_addr + 8 > binary.text_size) return std::nullopt;
    site.field_addr += binary.text_base;
  }
  return report;
}

std::optional<VerifyReport> VerificationCache::lookup(const crypto::Digest& binary_digest,
                                                      const LoadedBinary& binary,
                                                      const VerifyConfig& config) {
  auto fp = verify_config_fingerprint(config);
  std::lock_guard lock(mutex_);
  if (!fp.has_value()) {
    ++stats_.bypasses;
    return std::nullopt;
  }
  Key key{binary_digest, binary.policies.mask(), *fp};
  if (auto it = entries_.find(key); it != entries_.end()) {
    auto report = rebase(it->second, binary);
    if (!report.has_value()) {
      ++stats_.misses;
      return std::nullopt;
    }
    touch_locked(it->second);
    ++stats_.hits;
    stats_.verify_ns_saved += it->second.verify_ns;
    return report;
  }
  // Local miss: read through to the parent (another shard may already have
  // verified this exact key). An adopted verdict is a hit, never a miss —
  // no verifier runs — and is kept resident locally so the next admission
  // does not pay the parent round trip.
  if (parent_ != nullptr) {
    if (auto entry = parent_->parent_peek(key)) {
      if (auto report = rebase(*entry, binary)) {
        stats_.verify_ns_saved += entry->verify_ns;
        store_locked(key, std::move(*entry));
        ++stats_.preloads;
        ++stats_.hits;
        ++stats_.parent_hits;
        return report;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

bool VerificationCache::warm_probe(const crypto::Digest& binary_digest,
                                   std::uint32_t claimed_mask,
                                   const VerifyConfig& config) {
  auto fp = verify_config_fingerprint(config);
  std::lock_guard lock(mutex_);
  if (!fp.has_value()) {
    ++stats_.bypasses;
    return false;
  }
  Key key{binary_digest, claimed_mask, *fp};
  if (auto it = entries_.find(key); it != entries_.end()) {
    touch_locked(it->second);
    ++stats_.hits;
    stats_.verify_ns_saved += it->second.verify_ns;
    return true;
  }
  if (parent_ != nullptr) {
    if (auto entry = parent_->parent_peek(key)) {
      stats_.verify_ns_saved += entry->verify_ns;
      store_locked(key, std::move(*entry));
      ++stats_.preloads;
      ++stats_.hits;
      ++stats_.parent_hits;
      return true;
    }
  }
  return false;  // not a miss: no verifier ran, and none will on our account
}

void VerificationCache::insert(const crypto::Digest& binary_digest,
                               const LoadedBinary& binary, const VerifyConfig& config,
                               const VerifyReport& report, std::uint64_t verify_ns) {
  auto fp = verify_config_fingerprint(config);
  if (!fp.has_value()) return;  // unfingerprintable configs are never cached
  auto entry = make_entry(binary, report, verify_ns);
  if (!entry.has_value()) return;
  Key key{binary_digest, binary.policies.mask(), *fp};
  std::lock_guard lock(mutex_);
  if (parent_ != nullptr) parent_->parent_put(key, *entry);  // write-through
  store_locked(key, std::move(*entry));
  ++stats_.insertions;
}

bool VerificationCache::resolve_admission_locked(
    const crypto::Digest& binary_digest, const LoadedBinary& binary,
    const std::optional<crypto::Digest>& fp, Admission& adm,
    std::shared_ptr<Inflight>& rec, Key& key) {
  if (!fp.has_value()) {
    ++stats_.bypasses;
    return false;  // Bypass: caller verifies alone, nothing recorded
  }
  key = Key{binary_digest, binary.policies.mask(), *fp};
  if (auto it = entries_.find(key); it != entries_.end()) {
    if (auto report = rebase(it->second, binary)) {
      touch_locked(it->second);
      ++stats_.hits;
      stats_.verify_ns_saved += it->second.verify_ns;
      adm.role = Admission::Role::Hit;
      adm.report = std::move(report);
      return false;
    }
    // Unrebasable entry: same as lookup(), a miss — but still
    // single-flight below, so a stampede on the mismatched key does not
    // multiply verifications.
  } else if (parent_ != nullptr) {
    // Read-through before leader election: a sibling shard's verdict (or
    // a sealed-store preload in the parent) admits this caller warm with
    // no verifier run and no in-flight record.
    if (auto entry = parent_->parent_peek(key)) {
      if (auto report = rebase(*entry, binary)) {
        stats_.verify_ns_saved += entry->verify_ns;
        store_locked(key, std::move(*entry));
        ++stats_.preloads;
        ++stats_.hits;
        ++stats_.parent_hits;
        adm.role = Admission::Role::Hit;
        adm.report = std::move(report);
        return false;
      }
    }
  }
  auto in = inflight_.find(key);
  if (in == inflight_.end()) {
    // Leader: counts as the miss that runs the full verifier.
    ++stats_.misses;
    rec = std::make_shared<Inflight>();
    inflight_.emplace(key, rec);
    adm.role = Admission::Role::Leader;
    adm.ticket.cache_ = this;
    adm.ticket.rec_ = rec;
    adm.ticket.key_ = key;
    return false;
  }
  rec = in->second;
  return true;
}

VerificationCache::Admission VerificationCache::begin_admission(
    const crypto::Digest& binary_digest, const LoadedBinary& binary,
    const VerifyConfig& config, std::optional<std::chrono::nanoseconds> max_wait) {
  Admission adm;
  auto fp = verify_config_fingerprint(config);
  Key key;
  std::shared_ptr<Inflight> rec;
  {
    std::lock_guard lock(mutex_);
    if (!resolve_admission_locked(binary_digest, binary, fp, adm, rec, key))
      return adm;
    ++stats_.coalesced;
    ++waiting_;
  }

  // Waiter: block until the leader resolves its ticket (or the bounded
  // wait expires). rec outlives the map entry (shared_ptr), so a leader
  // that erases the key first is fine.
  bool resolved = true;
  {
    std::unique_lock wait_lock(rec->m);
    if (max_wait.has_value())
      resolved = rec->cv.wait_for(wait_lock, *max_wait, [&] { return rec->done; });
    else
      rec->cv.wait(wait_lock, [&] { return rec->done; });
  }
  std::lock_guard lock(mutex_);
  --waiting_;
  adm.role = Admission::Role::Waiter;
  if (!resolved) {
    // The leader may still resolve later and its verdict will be cached
    // normally; this caller just refuses to block past its deadline.
    adm.failure = Status::fail("admission_timeout",
                               "timed out waiting for the in-flight "
                               "verification leader");
    return adm;
  }
  if (!rec->ok) {
    adm.failure = rec->error;
    return adm;
  }
  if (auto report = rebase(rec->entry, binary)) {
    stats_.verify_ns_saved += rec->entry.verify_ns;
    adm.report = std::move(report);
    return adm;
  }
  // The leader's verdict does not fit this enclave's text (fail-closed
  // rebase refusal): verify alone rather than trust it.
  adm.role = Admission::Role::Bypass;
  return adm;
}

VerificationCache::Admission VerificationCache::poll_admission(
    const crypto::Digest& binary_digest, const LoadedBinary& binary,
    const VerifyConfig& config) {
  Admission adm;
  auto fp = verify_config_fingerprint(config);
  Key key;
  std::shared_ptr<Inflight> rec;
  std::lock_guard lock(mutex_);
  if (!resolve_admission_locked(binary_digest, binary, fp, adm, rec, key))
    return adm;
  // In flight elsewhere: report that without joining — a streaming caller
  // polls at begin and only commits to a blocking wait at commit time.
  adm.role = Admission::Role::InFlight;
  return adm;
}

std::size_t VerificationCache::inflight_waiters() const {
  std::lock_guard lock(mutex_);
  return waiting_;
}

VerificationCache::AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : cache_(other.cache_), rec_(std::move(other.rec_)), key_(other.key_) {
  other.cache_ = nullptr;
  other.rec_.reset();
}

VerificationCache::AdmissionTicket& VerificationCache::AdmissionTicket::operator=(
    AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr && rec_ != nullptr)
      fail(Status::fail("admission_abandoned",
                        "admission leader replaced its ticket unresolved"));
    cache_ = other.cache_;
    rec_ = std::move(other.rec_);
    key_ = other.key_;
    other.cache_ = nullptr;
    other.rec_.reset();
  }
  return *this;
}

VerificationCache::AdmissionTicket::~AdmissionTicket() {
  if (cache_ != nullptr && rec_ != nullptr)
    fail(Status::fail("admission_abandoned",
                      "admission leader exited without publishing a verdict"));
}

void VerificationCache::AdmissionTicket::publish(const LoadedBinary& binary,
                                                 const VerifyReport& report,
                                                 std::uint64_t verify_ns) {
  if (cache_ == nullptr || rec_ == nullptr) return;
  auto entry = make_entry(binary, report, verify_ns);
  {
    std::lock_guard lock(cache_->mutex_);
    if (entry.has_value()) {
      if (cache_->parent_ != nullptr)  // write-through: shards share verdicts
        cache_->parent_->parent_put(key_, *entry);
      cache_->store_locked(key_, *entry);
      ++cache_->stats_.insertions;
    }
    cache_->inflight_.erase(key_);
  }
  {
    std::lock_guard lock(rec_->m);
    rec_->done = true;
    rec_->ok = entry.has_value();
    if (entry.has_value())
      rec_->entry = std::move(*entry);
    else
      rec_->error = Status::fail("cache_unrebasable",
                                 "verified report references sites outside the text");
  }
  rec_->cv.notify_all();
  cache_ = nullptr;
  rec_.reset();
}

void VerificationCache::AdmissionTicket::fail(Status error) {
  if (cache_ == nullptr || rec_ == nullptr) return;
  {
    // Failures are never cached: dropping the in-flight record is the whole
    // negative-result story — the next admission of this key elects a new
    // leader and re-verifies.
    std::lock_guard lock(cache_->mutex_);
    cache_->inflight_.erase(key_);
  }
  {
    std::lock_guard lock(rec_->m);
    rec_->done = true;
    rec_->ok = false;
    rec_->error = std::move(error);
  }
  rec_->cv.notify_all();
  cache_ = nullptr;
  rec_.reset();
}

CacheStats VerificationCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t VerificationCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace deflection::verifier
