#include "verifier/sealed_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "crypto/sha256.h"

namespace deflection::verifier {
namespace {

constexpr char kMagic[8] = {'D', 'F', 'L', 'S', 'E', 'A', 'L', '1'};

constexpr char kSealPurpose[] = "admission-cache-seal";
constexpr char kMacPurpose[] = "admission-cache-mac";

void put_digest(ByteWriter& w, const crypto::Digest& d) {
  w.bytes(BytesView(d.data(), d.size()));
}

bool get_digest(ByteReader& r, crypto::Digest& out) {
  Bytes raw = r.bytes(out.size());
  if (!r.ok()) return false;
  std::memcpy(out.data(), raw.data(), out.size());
  return true;
}

// Entry payload sealed inside a record body: the verdict itself. The record
// key fields (digest, policy mask, config fingerprint) live in the plaintext
// header and are bound in via AAD instead of being duplicated here.
Bytes serialize_body(const PortableEntry& e) {
  Bytes out;
  ByteWriter w(out);
  w.u64(e.text_size);
  w.u64(e.verify_ns);
  w.u64(e.report.instructions);
  w.i32(e.report.store_guards);
  w.i32(e.report.rsp_guards);
  w.i32(e.report.shadow_prologues);
  w.i32(e.report.shadow_epilogues);
  w.i32(e.report.indirect_guards);
  w.i32(e.report.aex_probes);
  w.u64(e.report.patches.size());
  for (const PatchSite& p : e.report.patches) {
    w.u64(p.field_addr);  // text-relative (PortableEntry invariant)
    w.u8(static_cast<std::uint8_t>(p.kind));
  }
  return out;
}

// nullopt on any framing violation — truncated body, or a patch count that
// does not match the bytes present. The patch-site *range* check is left to
// VerificationCache::import_entry, the single authority on that invariant.
std::optional<PortableEntry> deserialize_body(BytesView body, const PortableEntry& key) {
  ByteReader r(body);
  PortableEntry e = key;  // digest / policy_mask / config from the header
  e.text_size = r.u64();
  e.verify_ns = r.u64();
  e.report.instructions = static_cast<std::size_t>(r.u64());
  e.report.store_guards = r.i32();
  e.report.rsp_guards = r.i32();
  e.report.shadow_prologues = r.i32();
  e.report.shadow_epilogues = r.i32();
  e.report.indirect_guards = r.i32();
  e.report.aex_probes = r.i32();
  std::uint64_t patch_count = r.u64();
  if (!r.ok()) return std::nullopt;
  // 9 bytes per patch; remaining() bounds patch_count before the reserve so
  // a corrupt count cannot drive a huge allocation.
  if (patch_count > r.remaining() / 9) return std::nullopt;
  e.report.patches.reserve(static_cast<std::size_t>(patch_count));
  for (std::uint64_t i = 0; i < patch_count; ++i) {
    PatchSite p;
    p.field_addr = r.u64();
    p.kind = static_cast<PatchKind>(r.u8());
    e.report.patches.push_back(p);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return e;
}

}  // namespace

crypto::Nonce96 SealedCacheStore::record_nonce(std::uint64_t index,
                                               const crypto::Digest& digest) const {
  Bytes msg;
  ByteWriter w(msg);
  w.str("record-nonce");
  w.u64(index);
  put_digest(w, digest);
  crypto::Key256 mac_key = platform_.seal_key(kMacPurpose);
  crypto::Digest d = crypto::hmac_sha256(BytesView(mac_key.data(), mac_key.size()), msg);
  crypto::Nonce96 nonce{};
  std::memcpy(nonce.data(), d.data(), nonce.size());
  return nonce;
}

Bytes SealedCacheStore::record_aad(const PortableEntry& entry, std::uint64_t index) {
  Bytes aad;
  ByteWriter w(aad);
  w.u32(kFormatVersion);
  w.u64(index);
  put_digest(w, entry.binary);
  w.u32(entry.policy_mask);
  put_digest(w, entry.config);
  return aad;
}

Bytes SealedCacheStore::export_entries(const std::vector<PortableEntry>& entries) const {
  crypto::Key256 seal_key = platform_.seal_key(kSealPurpose);
  crypto::Key256 mac_key = platform_.seal_key(kMacPurpose);

  Bytes out;
  ByteWriter w(out);
  w.bytes(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  w.u32(kFormatVersion);
  w.str(platform_.platform_id);
  w.u64(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PortableEntry& e = entries[i];
    put_digest(w, e.binary);
    w.u32(e.policy_mask);
    put_digest(w, e.config);
    Bytes body = crypto::aead_seal(seal_key, record_nonce(i, e.binary),
                                   serialize_body(e), record_aad(e, i));
    w.u64(body.size());
    w.bytes(body);
  }
  crypto::Digest mac =
      crypto::hmac_sha256(BytesView(mac_key.data(), mac_key.size()), out);
  w.bytes(BytesView(mac.data(), mac.size()));
  return out;
}

SealedCacheStore::LoadStats SealedCacheStore::import_into(
    BytesView file, const VerifyConfig& config, VerificationCache& cache) const {
  LoadStats stats;

  // Header. Any disagreement means "not a store we understand": discard
  // everything rather than guess at the framing.
  ByteReader r(file);
  Bytes magic = r.bytes(sizeof(kMagic));
  if (!r.ok() || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) return stats;
  std::uint32_t version = r.u32();
  (void)r.str();  // platform_id: informational; the keys are the real binding
  std::uint64_t count = r.u64();
  if (!r.ok() || version != kFormatVersion) return stats;
  stats.header_ok = true;
  stats.records_total = count;
  stats.records_discarded = count;

  // Whole-file MAC (trailing 32 bytes over everything before them).
  // Advisory: per-record AEAD is the admission gate, so a file whose
  // trailer was clipped or flipped still yields its authentic records.
  crypto::Key256 mac_key = platform_.seal_key(kMacPurpose);
  if (file.size() >= 32) {
    crypto::Digest want =
        crypto::hmac_sha256(BytesView(mac_key.data(), mac_key.size()),
                            file.subspan(0, file.size() - 32));
    crypto::Digest got{};
    std::memcpy(got.data(), file.data() + file.size() - 32, 32);
    stats.file_mac_ok = crypto::digest_equal(want, got);
  }

  std::optional<crypto::Digest> want_config = verify_config_fingerprint(config);

  crypto::Key256 seal_key = platform_.seal_key(kSealPurpose);
  for (std::uint64_t i = 0; i < count; ++i) {
    PortableEntry key;
    if (!get_digest(r, key.binary)) break;
    key.policy_mask = r.u32();
    if (!get_digest(r, key.config)) break;
    std::uint64_t body_len = r.u64();
    if (!r.ok() || body_len > kMaxRecordBody) break;
    Bytes body = r.bytes(static_cast<std::size_t>(body_len));
    if (!r.ok()) break;  // truncation: framing is gone, stop here

    // From here on a failure discards only this record; the stream is
    // still framed, so later records remain reachable.
    if (!want_config || !crypto::digest_equal(key.config, *want_config)) continue;
    std::optional<Bytes> plain =
        crypto::aead_open(seal_key, body, record_aad(key, i));
    if (!plain) continue;
    std::optional<PortableEntry> entry = deserialize_body(*plain, key);
    if (!entry) continue;
    if (!cache.import_entry(*entry)) continue;
    ++stats.records_loaded;
    --stats.records_discarded;
  }
  return stats;
}

Status SealedCacheStore::save(const std::string& path,
                              const VerificationCache& cache) const {
  Bytes data = export_cache(cache);
  // Crash-atomic publish: write + fsync a same-directory temp file, then
  // rename it over the destination, then fsync the directory so the rename
  // itself is durable. A crash at any point leaves either the previous
  // complete store or the new complete store — never a torn prefix. (The
  // importer would fail closed on a torn file anyway; atomicity preserves
  // the warm-boot guarantee instead of silently degrading it to cold.)
  // The counter keeps concurrent savers (racing stream commits) on
  // distinct temp files; rename's atomicity picks the last complete one.
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0)
    return Status::fail("io", "cannot open sealed store temp for write: " + tmp);
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::fail("io", "short write to sealed store temp: " + tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::fail("io", "fsync failed on sealed store temp: " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::fail("io", "close failed on sealed store temp: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::fail("io", "cannot publish sealed store: " + path);
  }
  std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::ok();
}

SealedCacheStore::LoadStats SealedCacheStore::load(const std::string& path,
                                                   const VerifyConfig& config,
                                                   VerificationCache& cache) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // missing store: cold start, not an error
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return import_into(data, config, cache);
}

SealedCacheStore::Dump SealedCacheStore::dump(BytesView file) {
  Dump d;
  ByteReader r(file);
  Bytes magic = r.bytes(sizeof(kMagic));
  if (!r.ok() || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) return d;
  d.version = r.u32();
  d.platform_id = r.str();
  d.record_count = r.u64();
  if (!r.ok()) return d;
  d.header_ok = d.version == kFormatVersion;
  if (!d.header_ok) return d;

  for (std::uint64_t i = 0; i < d.record_count; ++i) {
    DumpRecord rec;
    if (!get_digest(r, rec.digest)) break;
    rec.policy_mask = r.u32();
    if (!get_digest(r, rec.config)) break;
    rec.body_len = r.u64();
    if (!r.ok() || rec.body_len > kMaxRecordBody) break;
    (void)r.bytes(static_cast<std::size_t>(rec.body_len));  // skip ciphertext
    if (!r.ok()) break;
    d.records.push_back(rec);
  }
  d.truncated = d.records.size() != d.record_count;
  d.mac_present = !d.truncated && r.remaining() >= 32;
  return d;
}

}  // namespace deflection::verifier
