#include "verifier/verify.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "support/parallel.h"

namespace deflection::verifier {

using codegen::kMagicAexCount;
using codegen::kMagicBtTable;
using codegen::kMagicSsaMarker;
using codegen::kMagicSsBase;
using codegen::kMagicSsLimit;
using codegen::kMagicSsPtr;
using codegen::kMagicStackHi;
using codegen::kMagicStackLo;
using codegen::kMagicStoreHi;
using codegen::kMagicStoreLo;
using isa::Cond;
using isa::Instr;
using isa::Mem;
using isa::Op;
using isa::Reg;

namespace {

constexpr Reg kS0 = isa::kScratch0;  // R14
constexpr Reg kS1 = isa::kScratch1;  // R15

enum class PatternKind : std::uint8_t {
  None = 0,
  StoreGuard,
  RspGuard,
  ShadowProlog,
  ShadowEpilog,
  IndirectGuard,
  AexProbe,
};

bool is_exempt_store(const Instr& ins) {
  return ins.mem.has_base && ins.mem.base == Reg::RSP && !ins.mem.has_index &&
         ins.mem.disp >= 0 && ins.mem.disp + 8 <= codegen::kRspSlack;
}

bool mem_uses_scratch(const Mem& mem) {
  return (mem.has_base && (mem.base == kS0 || mem.base == kS1)) ||
         (mem.has_index && (mem.index == kS0 || mem.index == kS1));
}

// The policy verifier, runnable whole (run(), the serial reference) or in
// index ranges (the *_range entry points the sharded driver dispatches).
// It operates on the sorted instruction vector alone: boundary lookups
// binary-search it, which is observably identical to the Disassembly map
// built over the same instructions.
class Verifier {
 public:
  Verifier(const std::vector<Instr>& instrs, const LoadedBinary& binary,
           const VerifyConfig& config)
      : instrs_(instrs),
        binary_(binary),
        config_(config),
        verify_(binary.policies),
        kind_(instrs.size(), PatternKind::None),
        start_(instrs.size(), 0) {}

  Result<VerifyReport> run() {
    if (auto s = check_policy_cover(); !s.is_ok()) return s.error();
    if (auto s = scan_patterns(0, count(), report_); !s.is_ok()) return s.error();
    if (auto s = resolve_leaves(); !s.is_ok()) return s.error();
    if (auto s = check_singletons(0, count()); !s.is_ok()) return s.error();
    if (auto s = check_entries(0, count()); !s.is_ok()) return s.error();
    if (auto s = check_entries_tail(); !s.is_ok()) return s.error();
    if (auto s = check_probe_paths(); !s.is_ok()) return s.error();
    if (auto s = check_violation_stub(report_); !s.is_ok()) return s.error();
    report_.instructions = count();
    return report_;
  }

  // ---- sharded-driver surface ----
  // Phase A per chunk: pattern scan over [begin, end) into a chunk-local
  // report. Chunks are cut at flow breaks, where the serial scan position
  // provably lands, so the per-chunk scans reproduce the serial scan
  // exactly; kind_/start_ writes stay inside the chunk.
  Status scan_patterns(std::size_t begin, std::size_t end, VerifyReport& report);
  // Phase B per chunk (requires every chunk's scan complete): the
  // singleton rules and the per-instruction entry rules. Both only read
  // the global kind_/start_/leaf arrays, so ranges are independent.
  Status check_singletons(std::size_t begin, std::size_t end);
  Status check_entries(std::size_t begin, std::size_t end);
  // Serial steps run by the driver's leader: leaf resolution between the
  // scan and Phase B (Phase B reads the leaf arrays), the rest after the
  // chunks pass.
  Status resolve_leaves();
  Status check_policy_cover() const;
  Status check_entries_tail();
  Status check_probe_paths();
  Status check_violation_stub(const VerifyReport& merged);
  // Streaming-driver support: widens the per-instruction arrays after the
  // shared instruction vector (the streaming disassembler's tiled prefix)
  // grew. Existing entries — and the indices the scans handed out — stay
  // put, which is what makes incremental scanning over a growing prefix
  // equivalent to one scan over the final vector.
  void grow() {
    kind_.resize(instrs_.size(), PatternKind::None);
    start_.resize(instrs_.size(), 0);
  }

 private:
  // ---- small helpers ----
  const Instr& at(std::size_t i) const { return instrs_[i]; }
  std::size_t count() const { return instrs_.size(); }

  // addr -> instruction index over the sorted vector (the map-free
  // equivalent of Disassembly::index lookups).
  std::optional<std::size_t> find_index(std::uint64_t addr) const {
    auto it = std::lower_bound(
        instrs_.begin(), instrs_.end(), addr,
        [](const Instr& ins, std::uint64_t a) { return ins.addr < a; });
    if (it == instrs_.end() || it->addr != addr) return std::nullopt;
    return static_cast<std::size_t>(it - instrs_.begin());
  }

  Result<VerifyReport> fail_at(std::uint64_t addr, const std::string& code,
                               const std::string& msg) {
    return Result<VerifyReport>::fail(code, msg + " (at " + std::to_string(addr) + ")");
  }
  Status err(std::uint64_t addr, const std::string& code, const std::string& msg) {
    return Status::fail(code, msg + " (at " + std::to_string(addr) + ")");
  }

  bool p(Policy policy) const { return verify_.has(policy); }
  bool store_policy() const {
    return p(kPolicyP1) || p(kPolicyP3) || p(kPolicyP4);
  }

  bool is_movri(const Instr& i, Reg rd, std::int64_t imm) const {
    return i.op == Op::MovRI && i.rd == rd && i.imm == imm;
  }
  bool is_load(const Instr& i, Reg rd, Reg base) const {
    return i.op == Op::Load && i.rd == rd && i.mem.has_base && i.mem.base == base &&
           !i.mem.has_index && i.mem.disp == 0;
  }
  bool is_store_to(const Instr& i, Reg base, Reg rs) const {
    return i.op == Op::Store && i.rs == rs && i.mem.has_base && i.mem.base == base &&
           !i.mem.has_index && i.mem.disp == 0;
  }
  bool is_cmprr(const Instr& i, Reg rd, Reg rs) const {
    return i.op == Op::CmpRR && i.rd == rd && i.rs == rs;
  }
  // Conditional jump to the violation stub.
  bool is_jcc_violation(const Instr& i, Cond cond) const {
    return i.op == Op::Jcc && i.cond == cond && binary_.violation_addr != 0 &&
           i.branch_target() == binary_.violation_addr;
  }

  void mark(std::size_t begin, std::size_t end, PatternKind kind) {
    start_[begin] = 1;
    for (std::size_t i = begin; i < end; ++i) kind_[i] = kind;
  }
  void patch(VerifyReport& report, std::size_t i, PatchKind kind) {
    // imm64 of an RI64-layout instruction sits 2 bytes in.
    report.patches.push_back(PatchSite{at(i).addr + 2, kind});
  }

  bool writes_rsp(const Instr& i) const { return i.writes_rsp_explicitly(); }

  Status match_store_guard(std::size_t& i, VerifyReport& report);
  Status match_rsp_guard(std::size_t& i, VerifyReport& report);
  Status match_shadow(std::size_t& i, VerifyReport& report);
  Status match_shadow_prolog(std::size_t& i, VerifyReport& report);
  Status match_shadow_epilog(std::size_t& i, VerifyReport& report);
  Status match_indirect_guard(std::size_t& i, VerifyReport& report);
  Status match_aex_probe(std::size_t& i, VerifyReport& report);
  // How control reaches a target — the entry rules differ per edge kind.
  enum class EntryVia { Call, Jump, Table, Boot };
  Status check_entry(std::uint64_t target, std::uint64_t from, EntryVia via,
                     std::size_t from_idx = SIZE_MAX);
  Result<std::size_t> target_index(std::uint64_t target, std::uint64_t from);
  Status resolve_leaf_at(std::size_t ret_i);

  // An elided-leaf region (P5, produced by the O2 shadow-elision pass):
  // instructions [entry, ret] with the frame setup ending at sub_end.
  struct Leaf {
    std::size_t entry = 0;
    std::size_t sub_end = 0;
    std::size_t ret = 0;
  };
  bool in_leaf(std::size_t i) const { return !leaf_id_.empty() && leaf_id_[i] != 0; }
  bool is_leaf_ret(std::size_t i) const {
    return in_leaf(i) && leaves_[leaf_id_[i] - 1].ret == i;
  }

  const std::vector<Instr>& instrs_;
  const LoadedBinary& binary_;
  const VerifyConfig& config_;
  PolicySet verify_;  // policies whose annotations must be present: claimed
  std::vector<PatternKind> kind_;
  // One byte per instruction (not vector<bool>: the sharded scan writes
  // disjoint index ranges from different threads, which a packed bitfield
  // would turn into racing read-modify-writes on shared words).
  std::vector<std::uint8_t> start_;
  std::vector<Leaf> leaves_;
  std::vector<std::uint32_t> leaf_id_;  // 1-based index into leaves_, 0 = none
  VerifyReport report_;
};

// ---- policy cover ----

Status Verifier::check_policy_cover() const {
  if (!binary_.policies.covers(config_.required))
    return Status::fail("policy_uncovered",
                        "binary claims " + binary_.policies.to_string() +
                            " but the data owner requires " +
                            config_.required.to_string() + " (at 0)");
  return Status::ok();
}

// ---- pattern scan ----

Status Verifier::scan_patterns(std::size_t begin, std::size_t end, VerifyReport& report) {
  std::size_t i = begin;
  while (i < end) {
    const Instr& head = at(i);
    if (p(kPolicyP6) && is_movri(head, kS0, kMagicSsaMarker)) {
      if (auto s = match_aex_probe(i, report); !s.is_ok()) return s;
      continue;
    }
    if (store_policy() && head.op == Op::Lea && head.rd == kS0) {
      if (auto s = match_store_guard(i, report); !s.is_ok()) return s;
      continue;
    }
    if (p(kPolicyP5) && is_movri(head, kS1, kMagicSsPtr)) {
      if (auto s = match_shadow(i, report); !s.is_ok()) return s;
      continue;
    }
    if (p(kPolicyP5) && head.op == Op::MovRR && head.rd == kS0) {
      if (auto s = match_indirect_guard(i, report); !s.is_ok()) return s;
      continue;
    }
    if (p(kPolicyP2) && writes_rsp(head)) {
      if (auto s = match_rsp_guard(i, report); !s.is_ok()) return s;
      continue;
    }
    ++i;  // plain instruction; singleton rules run later
  }
  return Status::ok();
}

Status Verifier::match_store_guard(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_store_guard", "malformed store annotation: " + why);
    };
    if (i + 8 > count()) return bad("truncated");
    const Mem& m = at(i).mem;
    if (mem_uses_scratch(m)) return bad("guarded address uses scratch registers");
    if (!is_movri(at(i + 1), kS1, kMagicStoreLo)) return bad("missing lower bound");
    if (!is_cmprr(at(i + 2), kS0, kS1)) return bad("missing lower compare");
    if (!is_jcc_violation(at(i + 3), Cond::B)) return bad("missing lower exit");
    if (at(i + 4).op == Op::AddRI && at(i + 4).rd == kS0) {
      // Widened (coalesced) form: the lower check ran against base+dmin;
      // an AddRI widens the upper check to base+dmin+W, and a run of
      // stores to [base+d], d in [dmin, dmin+W], follows back to back.
      // Sound for every member: lower bound <= base+dmin <= base+d and
      // base+d <= base+dmin+W < stack_top-7, so even 8-byte stores stay
      // inside the window the two compares establish.
      const std::int64_t width = at(i + 4).imm;
      if (width < 0 || width > codegen::kRspSlack) return bad("widening out of range");
      if (i + 9 > count()) return bad("truncated");
      if (!is_movri(at(i + 5), kS1, kMagicStoreHi)) return bad("missing upper bound");
      if (!is_cmprr(at(i + 6), kS0, kS1)) return bad("missing upper compare");
      if (!is_jcc_violation(at(i + 7), Cond::AE)) return bad("missing upper exit");
      std::size_t j = i + 8;
      while (j < count() && at(j).may_store() && at(j).mem.has_base == m.has_base &&
             at(j).mem.has_index == m.has_index &&
             (!m.has_base || at(j).mem.base == m.base) &&
             (!m.has_index ||
              (at(j).mem.index == m.index && at(j).mem.scale_log2 == m.scale_log2)) &&
             at(j).mem.disp >= m.disp &&
             static_cast<std::int64_t>(at(j).mem.disp) <= m.disp + width)
        ++j;
      if (j == i + 8) return bad("no store after annotation");
      patch(report, i + 1, PatchKind::StoreLo);
      patch(report, i + 5, PatchKind::StoreHi);
      mark(i, j, PatternKind::StoreGuard);
      ++report.store_guards;
      i = j;
      return Status::ok();
    }
    if (!is_movri(at(i + 4), kS1, kMagicStoreHi)) return bad("missing upper bound");
    if (!is_cmprr(at(i + 5), kS0, kS1)) return bad("missing upper compare");
    if (!is_jcc_violation(at(i + 6), Cond::AE)) return bad("missing upper exit");
    const Instr& store = at(i + 7);
    if (!store.may_store()) return bad("no store after annotation");
    if (!(store.mem == m)) return bad("annotation guards a different address");
    patch(report, i + 1, PatchKind::StoreLo);
    patch(report, i + 4, PatchKind::StoreHi);
    mark(i, i + 8, PatternKind::StoreGuard);
    ++report.store_guards;
    i += 8;
    return Status::ok();
}

Status Verifier::match_rsp_guard(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_rsp_guard", "malformed RSP annotation: " + why);
    };
    // One or more back-to-back explicit RSP writes, then one guard that
    // validates the final value. Sound for any run length: nothing between
    // the writes reads memory through RSP (they execute back to back), and
    // an AEX mid-run saves state to the SSA, never to the guest stack, so
    // only the value the guard checks is ever dereferenced.
    std::size_t k = i + 1;
    while (k < count() && writes_rsp(at(k))) ++k;
    if (k + 6 > count()) return bad("truncated");
    if (!is_movri(at(k), kS1, kMagicStackLo)) return bad("missing lower bound");
    if (!is_cmprr(at(k + 1), Reg::RSP, kS1)) return bad("missing lower compare");
    if (!is_jcc_violation(at(k + 2), Cond::B)) return bad("missing lower exit");
    if (!is_movri(at(k + 3), kS1, kMagicStackHi)) return bad("missing upper bound");
    if (!is_cmprr(at(k + 4), Reg::RSP, kS1)) return bad("missing upper compare");
    if (!is_jcc_violation(at(k + 5), Cond::A)) return bad("missing upper exit");
    patch(report, k, PatchKind::StackLo);
    patch(report, k + 3, PatchKind::StackHi);
    mark(i, k + 6, PatternKind::RspGuard);
    ++report.rsp_guards;
    i = k + 6;
    return Status::ok();
}

Status Verifier::match_shadow(std::size_t& i, VerifyReport& report) {
    // Disambiguate prologue vs epilogue by the third instruction.
    if (i + 3 <= count() && at(i + 2).op == Op::SubRI) return match_shadow_epilog(i, report);
    return match_shadow_prolog(i, report);
}

Status Verifier::match_shadow_prolog(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_shadow_prolog", "malformed shadow prologue: " + why);
    };
    if (i + 10 > count()) return bad("truncated");
    if (!is_movri(at(i), kS1, kMagicSsPtr)) return bad("missing top-slot address");
    if (!is_load(at(i + 1), kS0, kS1)) return bad("missing top load");
    if (!is_load(at(i + 2), kS1, Reg::RSP)) return bad("missing return-address load");
    if (!is_store_to(at(i + 3), kS0, kS1)) return bad("missing shadow push");
    if (at(i + 4).op != Op::AddRI || at(i + 4).rd != kS0 || at(i + 4).imm != 8)
      return bad("missing top increment");
    if (!is_movri(at(i + 5), kS1, kMagicSsLimit)) return bad("missing limit");
    if (!is_cmprr(at(i + 6), kS0, kS1)) return bad("missing limit compare");
    if (!is_jcc_violation(at(i + 7), Cond::A)) return bad("missing overflow exit");
    if (!is_movri(at(i + 8), kS1, kMagicSsPtr)) return bad("missing top-slot reload");
    if (!is_store_to(at(i + 9), kS1, kS0)) return bad("missing top writeback");
    patch(report, i, PatchKind::SsPtr);
    patch(report, i + 5, PatchKind::SsLimit);
    patch(report, i + 8, PatchKind::SsPtr);
    mark(i, i + 10, PatternKind::ShadowProlog);
    ++report.shadow_prologues;
    i += 10;
    return Status::ok();
}

Status Verifier::match_shadow_epilog(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_shadow_epilog", "malformed shadow epilogue: " + why);
    };
    if (i + 13 > count()) return bad("truncated");
    if (!is_movri(at(i), kS1, kMagicSsPtr)) return bad("missing top-slot address");
    if (!is_load(at(i + 1), kS0, kS1)) return bad("missing top load");
    if (at(i + 2).op != Op::SubRI || at(i + 2).rd != kS0 || at(i + 2).imm != 8)
      return bad("missing top decrement");
    if (!is_movri(at(i + 3), kS1, kMagicSsBase)) return bad("missing base");
    if (!is_cmprr(at(i + 4), kS0, kS1)) return bad("missing base compare");
    if (!is_jcc_violation(at(i + 5), Cond::B)) return bad("missing underflow exit");
    if (!is_movri(at(i + 6), kS1, kMagicSsPtr)) return bad("missing top-slot reload");
    if (!is_store_to(at(i + 7), kS1, kS0)) return bad("missing top writeback");
    if (!is_load(at(i + 8), kS0, kS0)) return bad("missing expected-return load");
    if (!is_load(at(i + 9), kS1, Reg::RSP)) return bad("missing actual-return load");
    if (!is_cmprr(at(i + 10), kS0, kS1)) return bad("missing return compare");
    if (!is_jcc_violation(at(i + 11), Cond::NE)) return bad("missing mismatch exit");
    if (at(i + 12).op != Op::Ret) return bad("no RET after epilogue");
    patch(report, i, PatchKind::SsPtr);
    patch(report, i + 3, PatchKind::SsBase);
    patch(report, i + 6, PatchKind::SsPtr);
    mark(i, i + 13, PatternKind::ShadowEpilog);
    ++report.shadow_epilogues;
    i += 13;
    return Status::ok();
}

Status Verifier::match_indirect_guard(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_indirect_guard", "malformed indirect-branch annotation: " + why);
    };
    if (i + 11 > count()) return bad("truncated");
    Reg target = at(i).rs;
    if (target == kS0 || target == kS1) return bad("target is a scratch register");
    if (!is_movri(at(i + 1), kS1, codegen::kMagicTextBase)) return bad("missing text base");
    if (at(i + 2).op != Op::SubRR || at(i + 2).rd != kS0 || at(i + 2).rs != kS1)
      return bad("missing offset computation");
    if (!is_movri(at(i + 3), kS1, codegen::kMagicTextSize)) return bad("missing text size");
    if (!is_cmprr(at(i + 4), kS0, kS1)) return bad("missing range compare");
    if (!is_jcc_violation(at(i + 5), Cond::AE)) return bad("missing range exit");
    if (!is_movri(at(i + 6), kS1, kMagicBtTable)) return bad("missing table base");
    const Instr& tbl = at(i + 7);
    if (tbl.op != Op::Load8 || tbl.rd != kS0 || !tbl.mem.has_base ||
        tbl.mem.base != kS1 || !tbl.mem.has_index || tbl.mem.index != kS0 ||
        tbl.mem.scale_log2 != 0 || tbl.mem.disp != 0)
      return bad("missing table lookup");
    if (at(i + 8).op != Op::CmpRI || at(i + 8).rd != kS0 || at(i + 8).imm != 1)
      return bad("missing table compare");
    if (!is_jcc_violation(at(i + 9), Cond::NE)) return bad("missing unlisted exit");
    const Instr& branch = at(i + 10);
    if (!branch.is_indirect_branch()) return bad("no indirect branch after annotation");
    if (branch.rd != target) return bad("annotation checks a different register");
    patch(report, i + 1, PatchKind::TextBase);
    patch(report, i + 3, PatchKind::TextSize);
    patch(report, i + 6, PatchKind::BtTable);
    mark(i, i + 11, PatternKind::IndirectGuard);
    ++report.indirect_guards;
    i += 11;
    return Status::ok();
}

Status Verifier::match_aex_probe(std::size_t& i, VerifyReport& report) {
    const std::uint64_t a = at(i).addr;
    auto bad = [&](const std::string& why) {
      return err(a, "verify_aex_probe", "malformed SSA probe: " + why);
    };
    if (i + 12 > count()) return bad("truncated");
    if (!is_movri(at(i), kS0, kMagicSsaMarker)) return bad("missing marker address");
    if (!is_load(at(i + 1), kS0, kS0)) return bad("missing marker load");
    if (at(i + 2).op != Op::CmpRI || at(i + 2).rd != kS0 ||
        at(i + 2).imm != codegen::kSsaMarkerValue)
      return bad("missing marker compare");
    const Instr& skip = at(i + 3);
    std::uint64_t end_addr = at(i + 11).addr + at(i + 11).length;
    if (skip.op != Op::Jcc || skip.cond != Cond::E || skip.branch_target() != end_addr)
      return bad("fast-path jump does not skip the probe");
    if (!is_movri(at(i + 4), kS0, kMagicAexCount)) return bad("missing counter address");
    if (!is_load(at(i + 5), kS1, kS0)) return bad("missing counter load");
    if (at(i + 6).op != Op::AddRI || at(i + 6).rd != kS1 || at(i + 6).imm != 1)
      return bad("missing counter increment");
    if (!is_store_to(at(i + 7), kS0, kS1)) return bad("missing counter store");
    const Instr& thresh = at(i + 8);
    if (thresh.op != Op::CmpRI || thresh.rd != kS1)
      return bad("missing threshold compare");
    if (thresh.imm < 1 || thresh.imm > config_.max_aex_threshold)
      return bad("threshold outside the allowed range");
    if (!is_jcc_violation(at(i + 9), Cond::G)) return bad("missing threshold exit");
    if (!is_movri(at(i + 10), kS0, kMagicSsaMarker)) return bad("missing marker reload");
    const Instr& reset = at(i + 11);
    if (reset.op != Op::StoreI || !reset.mem.has_base || reset.mem.base != kS0 ||
        reset.mem.has_index || reset.mem.disp != 0 ||
        reset.imm != codegen::kSsaMarkerValue)
      return bad("missing marker reset");
    patch(report, i, PatchKind::SsaMarker);
    patch(report, i + 4, PatchKind::AexCount);
    patch(report, i + 10, PatchKind::SsaMarker);
    mark(i, i + 12, PatternKind::AexProbe);
    ++report.aex_probes;
    i += 12;
    return Status::ok();
}

// ---- singleton rules: guardable operations outside patterns ----

Status Verifier::check_singletons(std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (kind_[i] != PatternKind::None) continue;
      const Instr& ins = at(i);
      if (store_policy() && ins.may_store() && !is_exempt_store(ins))
        return err(ins.addr, "verify_unguarded_store",
                   "store without a bound annotation");
      if (p(kPolicyP2) && writes_rsp(ins))
        return err(ins.addr, "verify_unguarded_rsp",
                   "explicit RSP write without annotation");
      if (p(kPolicyP5) && ins.is_indirect_branch())
        return err(ins.addr, "verify_unguarded_indirect",
                   "indirect branch without target check");
      if (p(kPolicyP5) && ins.is_ret() && !is_leaf_ret(i))
        return err(ins.addr, "verify_unguarded_ret",
                   "RET without shadow-stack epilogue");
      if (ins.op == Op::Ocall &&
          !config_.allowed_ocalls.contains(static_cast<std::uint8_t>(ins.imm)))
        return err(ins.addr, "verify_ocall",
                   "OCall number not permitted by enclave configuration");
    }
    // OCalls inside patterns cannot occur (patterns contain none), but an
    // adversarial producer cannot smuggle one in either: every pattern
    // instruction was shape-checked above.
    return Status::ok();
}

// ---- control-flow entry rules ----

// Returns the instruction index at `target` or an error.
Result<std::size_t> Verifier::target_index(std::uint64_t target, std::uint64_t from) {
    auto found = find_index(target);
    if (!found.has_value())
      return Result<std::size_t>::fail(
          "verify_target_misaligned",
          "branch target is not an instruction boundary (from " +
              std::to_string(from) + ")");
    std::size_t idx = *found;
    if (kind_[idx] != PatternKind::None && !start_[idx])
      return Result<std::size_t>::fail(
          "verify_target_in_annotation",
          "branch target lands inside an annotation (from " + std::to_string(from) + ")");
    return idx;
}

Status Verifier::check_entry(std::uint64_t target, std::uint64_t from, EntryVia via,
                             std::size_t from_idx) {
    if (binary_.violation_addr != 0 && target == binary_.violation_addr)
      return Status::ok();  // trapping into the stub is always safe
    auto idx_r = target_index(target, from);
    if (!idx_r.is_ok()) return idx_r.status();
    std::size_t idx = idx_r.value();
    if (in_leaf(idx)) {
      // Elided-leaf regions have their own entry discipline: the bare RET
      // is only safe when the return address was pushed by a CALL to the
      // leaf entry and nothing else could have entered the region.
      const Leaf& leaf = leaves_[leaf_id_[idx] - 1];
      switch (via) {
        case EntryVia::Call:
          if (idx == leaf.entry) return Status::ok();  // probe verified at resolve time
          return err(target, "verify_leaf_entry", "call into an elided-leaf body");
        case EntryVia::Jump:
          // Only the leaf's own (post-frame-setup) code may branch within
          // it; a jump to the entry would re-run the frame setup and shift
          // the return-address slot.
          if (from_idx < count() && in_leaf(from_idx) &&
              leaf_id_[from_idx] == leaf_id_[idx] && idx >= leaf.sub_end)
            return Status::ok();
          return err(target, "verify_leaf_entry", "jump into an elided leaf");
        case EntryVia::Table:
          return err(target, "verify_leaf_entry",
                     "elided leaf listed as an indirect-branch target");
        case EntryVia::Boot:
          return err(target, "verify_leaf_entry", "program entry is an elided leaf");
      }
    }
    // Direct jumps are exempt from the probe-at-target rule: the
    // path-sensitive probe walk (check_probe_paths) accounts for them
    // edge by edge, which is what lets an O2 producer drop probes at
    // forward-only jump targets.
    if (p(kPolicyP6) && via != EntryVia::Jump) {
      if (!(kind_[idx] == PatternKind::AexProbe && start_[idx]))
        return err(target, "verify_missing_probe",
                   "branch target lacks an SSA probe");
      idx += 12;  // probe length
    }
    if (p(kPolicyP5) && (via == EntryVia::Call || via == EntryVia::Table)) {
      if (idx >= count() || !(kind_[idx] == PatternKind::ShadowProlog && start_[idx]))
        return err(target, "verify_missing_prologue",
                   "call target lacks a shadow-stack prologue");
    }
    return Status::ok();
}

Status Verifier::check_entries(std::size_t begin, std::size_t end) {
    // Program-level direct branches. Each instruction's check reads only
    // the global kind_/start_/leaf arrays (complete after the scan and
    // leaf-resolution phases) and the instruction vector, so ranges are
    // independent.
    for (std::size_t i = begin; i < end; ++i) {
      if (kind_[i] != PatternKind::None) continue;
      const Instr& ins = at(i);
      if (ins.op == Op::Call) {
        if (auto s = check_entry(ins.branch_target(), ins.addr, EntryVia::Call, i);
            !s.is_ok())
          return s;
      } else if (ins.op == Op::Jmp || ins.op == Op::Jcc) {
        if (auto s = check_entry(ins.branch_target(), ins.addr, EntryVia::Jump, i);
            !s.is_ok())
          return s;
      }
    }
    return Status::ok();
}

Status Verifier::check_entries_tail() {
    // Indirect-branch list entries are call targets.
    for (std::uint64_t t : binary_.branch_targets) {
      if (auto s = check_entry(t, t, EntryVia::Table); !s.is_ok()) return s;
    }
    // The program entry (jumped to by the bootstrap, not called).
    if (auto s = check_entry(binary_.entry, binary_.entry, EntryVia::Boot); !s.is_ok())
      return s;
    return Status::ok();
}

// ---- P5 leaf resolution ----

// An O2 producer elides the shadow prologue/epilogue pair of provably-safe
// leaf functions (codegen reduce.cpp: elide_leaf_shadow), leaving a bare
// RET. Before the singleton rules run, every bare RET must be justified as
// the exit of such a leaf region:
//
//   [SSA probe]  SubRI RSP,F [P2 guard]  body…  AddRI RSP,F [P2 guard]  Ret
//
// whose body provably cannot disturb the return address the entering CALL
// stored at [RSP+F]: no calls, pushes/pops, indirect flow, OCalls, HLTs or
// nested RETs; no annotation patterns besides SSA probes (a guarded store
// may legally target any stack address, including the return slot); no RSP
// writes besides the balanced frame pair; every plain store RSP-relative
// within [0, F). Entry discipline (only CALLs to the entry may enter;
// nothing falls through into the frame setup) is enforced here and by
// check_entry. Fails closed: a bare RET that is not such an exit keeps the
// classic verify_unguarded_ret rejection.
Status Verifier::resolve_leaves() {
    if (!p(kPolicyP5)) return Status::ok();
    for (std::size_t i = 0; i < count(); ++i) {
      if (kind_[i] != PatternKind::None || !at(i).is_ret()) continue;
      if (leaf_id_.empty()) leaf_id_.assign(count(), 0);
      if (auto s = resolve_leaf_at(i); !s.is_ok()) return s;
    }
    return Status::ok();
}

Status Verifier::resolve_leaf_at(std::size_t ret_i) {
    auto bad = [&](const std::string& why) {
      return err(at(ret_i).addr, "verify_unguarded_ret",
                 "RET without shadow-stack epilogue (not an elided leaf: " + why + ")");
    };
    // Walks a pattern run backward from its last instruction to its start.
    auto run_start = [&](std::size_t j, PatternKind kind) -> std::optional<std::size_t> {
      std::size_t s = j;
      while (s > 0 && kind_[s] == kind && !start_[s]) --s;
      if (kind_[s] != kind || !start_[s]) return std::nullopt;
      return s;
    };
    if (ret_i == 0) return bad("no frame teardown");
    // 1. Frame teardown: AddRI RSP,F — P2-wrapped or bare — right before
    //    the RET. The producer's probe pass runs after leaf elision and may
    //    land an SSA probe between the teardown and the RET; probes write
    //    neither RSP nor the frame, so they are teardown-transparent.
    std::size_t t = ret_i;  // exclusive upper bound of the teardown search
    while (t > 0 && kind_[t - 1] == PatternKind::AexProbe) {
      auto s = run_start(t - 1, PatternKind::AexProbe);
      if (!s.has_value()) return bad("torn probe");
      t = *s;
    }
    if (t == 0) return bad("no frame teardown");
    std::size_t add_i = 0;
    if (kind_[t - 1] == PatternKind::RspGuard) {
      auto s = run_start(t - 1, PatternKind::RspGuard);
      if (!s.has_value()) return bad("torn RSP guard");
      if (writes_rsp(at(*s + 1))) return bad("merged RSP guard in teardown");
      add_i = *s;
    } else if (kind_[t - 1] == PatternKind::None) {
      add_i = t - 1;
    } else {
      return bad("no frame teardown");
    }
    const Instr& add = at(add_i);
    if (add.op != Op::AddRI || add.rd != Reg::RSP || add.imm < 0)
      return bad("no frame teardown");
    const std::int64_t frame = add.imm;
    // 2. Walk the body backward to the frame setup.
    std::size_t m = add_i;                // exclusive upper bound of the walk
    std::size_t sub_i = count();          // the SubRI (or its pattern start)
    std::size_t sub_end = 0;              // one past the frame-setup pattern
    while (m > 0) {
      std::size_t j = m - 1;
      if (kind_[j] == PatternKind::AexProbe) {
        auto s = run_start(j, PatternKind::AexProbe);
        if (!s.has_value()) return bad("torn probe");
        m = *s;  // loop-head probes are welcome in a body
        continue;
      }
      if (kind_[j] == PatternKind::RspGuard) {
        // The only RSP write below the teardown must be the frame setup.
        auto s = run_start(j, PatternKind::RspGuard);
        if (!s.has_value()) return bad("torn RSP guard");
        if (writes_rsp(at(*s + 1))) return bad("merged RSP guard in frame setup");
        sub_i = *s;
        sub_end = j + 1;
        break;
      }
      if (kind_[j] != PatternKind::None) return bad("guarded operation in body");
      const Instr& ins = at(j);
      if (writes_rsp(ins)) {
        sub_i = j;
        sub_end = j + 1;
        break;
      }
      switch (ins.op) {
        case Op::Call:
        case Op::CallInd:
        case Op::JmpInd:
        case Op::Push:
        case Op::Pop:
        case Op::PushI:
        case Op::Ocall:
        case Op::Hlt:
          return bad("unsupported operation in body");
        default:
          break;
      }
      if (ins.is_ret()) return bad("nested RET");
      if (ins.may_store() &&
          (!ins.mem.has_base || ins.mem.base != Reg::RSP || ins.mem.has_index ||
           ins.mem.disp < 0 ||
           ins.mem.disp + (ins.op == Op::Store8 ? 1 : 8) > frame))
        return bad("store may reach the return-address slot");
      m = j;
    }
    if (sub_i >= count()) return bad("no frame setup");
    const Instr& sub = at(sub_i);
    if (sub.op != Op::SubRI || sub.rd != Reg::RSP || sub.imm != frame)
      return bad("unbalanced frame");
    // 3. The entry: the SSA probe directly before the frame setup (P6
    //    claimed), else the frame setup itself. Its basic block must start
    //    fresh — nothing may fall through into the frame setup with an
    //    unchecked return slot.
    std::size_t entry = sub_i;
    if (p(kPolicyP6)) {
      if (entry < 12 || kind_[entry - 1] != PatternKind::AexProbe ||
          kind_[entry - 12] != PatternKind::AexProbe || !start_[entry - 12])
        return bad("entry lacks an SSA probe");
      entry -= 12;
    }
    if (entry != 0 && !at(entry - 1).ends_flow())
      return bad("execution can fall through into the entry");
    leaves_.push_back(Leaf{entry, sub_end, ret_i});
    const auto id = static_cast<std::uint32_t>(leaves_.size());
    for (std::size_t x = entry; x <= ret_i; ++x) leaf_id_[x] = id;
    return Status::ok();
}

// ---- P6 probe paths ----

Status Verifier::check_probe_paths() {
    if (!p(kPolicyP6)) return Status::ok();
    // Path-sensitive successor of the old linear density walk: bounds the
    // number of instructions executed between SSA probes along EVERY
    // control path, not just the straight-line sweep. `since` carries the
    // largest instruction count any path may have accumulated since its
    // last probe on arrival at instruction i:
    //   * probe instructions themselves are free (the producer's spacing
    //     counter excludes them too), guard annotations DO count;
    //   * a forward direct branch propagates its count to the target,
    //     merged in when the walk arrives there (all such edges point
    //     forward, so one pass sees every incoming edge first);
    //   * a backward direct branch must land on a probe — that cuts every
    //     cycle, so the forward pass is complete;
    //   * a flow break resets the linear counter: its successor is only
    //     reachable through recorded incoming edges (or dead).
    // Annotation-internal jumps are all shape-checked to target either the
    // violation stub (which halts within two instructions) or the probe's
    // own fast-path exit, so only kind-None jumps carry accounting.
    // This accepts everything the old rule accepted — on a binary whose
    // direct-branch targets all carry probes, every merge lands on a probe
    // and the walk degenerates to the old linear counter — while O2
    // binaries with probe-free forward-jump targets verify precisely.
    std::vector<int> incoming(count(), 0);
    int since = 0;
    for (std::size_t i = 0; i < count(); ++i) {
      if (kind_[i] == PatternKind::AexProbe) {
        since = 0;
        continue;
      }
      since = std::max(since, incoming[i]);
      ++since;
      const Instr& ins = at(i);
      if (kind_[i] == PatternKind::None && (ins.op == Op::Jmp || ins.op == Op::Jcc)) {
        std::uint64_t t = ins.branch_target();
        if (!(binary_.violation_addr != 0 && t == binary_.violation_addr)) {
          auto tidx = find_index(t);
          if (!tidx.has_value())
            return err(t, "verify_target_misaligned",
                       "branch target is not an instruction boundary (from " +
                           std::to_string(ins.addr) + ")");
          if (t <= ins.addr) {
            if (!(kind_[*tidx] == PatternKind::AexProbe && start_[*tidx]))
              return err(t, "verify_missing_probe",
                         "backward branch target lacks an SSA probe");
          } else {
            incoming[*tidx] = std::max(incoming[*tidx], since);
          }
        }
      }
      if (ins.ends_flow()) {
        since = 0;  // successors are reachable only via recorded edges
        continue;
      }
      if (since > config_.max_probe_gap)
        return err(ins.addr, "verify_probe_gap",
                   "more than " + std::to_string(config_.max_probe_gap) +
                       " instructions without an SSA probe");
    }
    return Status::ok();
}

// ---- violation stub ----

Status Verifier::check_violation_stub(const VerifyReport& merged) {
    bool any_patterns = merged.store_guards + merged.rsp_guards +
                            merged.shadow_prologues + merged.shadow_epilogues +
                            merged.indirect_guards + merged.aex_probes >
                        0;
    bool need = store_policy() || p(kPolicyP2) || p(kPolicyP5) || p(kPolicyP6);
    if (!any_patterns && !need) return Status::ok();
    if (binary_.violation_addr == 0)
      return Status::fail("verify_no_stub", "annotated binary lacks a violation stub");
    auto found = find_index(binary_.violation_addr);
    if (!found.has_value())
      return Status::fail("verify_no_stub", "violation stub is not decodable");
    std::size_t i = *found;
    if (i + 2 > count())
      return Status::fail("verify_bad_stub", "violation stub truncated");
    const Instr& mov = at(i);
    const Instr& hlt = at(i + 1);
    if (mov.op != Op::MovRI || mov.rd != Reg::RAX ||
        mov.imm != static_cast<std::int64_t>(codegen::kViolationExitCode) ||
        hlt.op != Op::Hlt)
      return Status::fail("verify_bad_stub",
                          "violation stub does not terminate the enclave");
    return Status::ok();
}

// ---- sharded cold-admission driver ----
//
// Splits the instruction stream into `workers` chunks cut at flow breaks
// and runs the verification stages per chunk on the shard pool:
//
//   Phase A (per chunk): linear-sweep cross-check of the chunk's byte
//     range + the pattern scan into a chunk-local report.
//   Leaf resolution (leader, serial, O(n)): justifies bare RETs between
//     the phases — Phase B reads the leaf arrays it fills.
//   Phase B (per chunk, after every scan finished): singleton rules,
//     per-instruction entry rules.
//   Leader tail: branch-target/entry checks, the serial probe-path walk,
//     report merge (chunk order == address order == serial order),
//     violation-stub check.
//
// Determinism contract: returns nullopt on ANY failure anywhere — the
// caller falls back to the serial pass, which reproduces the exact serial
// error (code, message, and selection among multiple failing regions).
// A non-null result is byte-identical to the serial VerifyReport, because
// every predicate evaluated here is the serial predicate over the same
// instruction vector and the patch sites are concatenated in chunk order.
std::optional<Result<VerifyReport>> verify_sharded(const sgx::AddressSpace& space,
                                                   const LoadedBinary& binary,
                                                   const VerifyConfig& config) {
  const int shards = config.workers;
  auto instrs_opt = disassemble_shards(space, binary, shards);
  if (!instrs_opt.has_value()) return std::nullopt;
  const std::vector<Instr>& instrs = *instrs_opt;
  const std::size_t n = instrs.size();
  if (n == 0) return std::nullopt;

  // Chunk boundaries: the closest flow break at or after each even split
  // point. The serial pattern scan provably lands on every flow-break
  // index (no annotation pattern's interior slot can end flow), so each
  // chunk's scan starts exactly where the serial scan would stand.
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (int c = 1; c < shards; ++c) {
    std::size_t want = n * static_cast<std::size_t>(c) / static_cast<std::size_t>(shards);
    std::size_t b = std::max({want, bounds.back(), std::size_t{1}});
    while (b < n && !instrs[b - 1].ends_flow()) ++b;
    if (b > bounds.back() && b < n) bounds.push_back(b);
  }
  bounds.push_back(n);
  const int chunks = static_cast<int>(bounds.size()) - 1;

  Verifier verifier(instrs, binary, config);
  if (!verifier.check_policy_cover().is_ok()) return std::nullopt;

  const std::uint8_t* raw = space.raw(binary.text_base, binary.text_size);
  if (raw == nullptr) return std::nullopt;

  std::vector<VerifyReport> chunk_reports(static_cast<std::size_t>(chunks));
  std::atomic<bool> failed{false};

  // Phase A: per-chunk linear cross-check + pattern scan.
  parallel::run_shards(chunks, [&](int c) {
    const std::size_t begin = bounds[static_cast<std::size_t>(c)];
    const std::size_t end = bounds[static_cast<std::size_t>(c) + 1];
    if (config.cross_check_linear) {
      // Re-decode the chunk's byte range linearly and require agreement,
      // instruction for instruction — the same predicate the serial pass
      // applies over the whole text, evaluated piecewise at the known
      // chunk byte boundaries.
      std::uint64_t off = instrs[begin].addr - binary.text_base;
      for (std::size_t i = begin; i < end; ++i) {
        auto r = isa::decode_one(BytesView(raw, binary.text_size), off, binary.text_base);
        if (!r.is_ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        isa::Instr ins = r.take();
        if (ins.addr != instrs[i].addr || ins.length != instrs[i].length ||
            ins.op != instrs[i].op) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        off += ins.length;
      }
    }
    if (!verifier.scan_patterns(begin, end, chunk_reports[static_cast<std::size_t>(c)])
             .is_ok())
      failed.store(true, std::memory_order_relaxed);
  });
  if (failed.load(std::memory_order_relaxed)) return std::nullopt;

  // Leaf resolution: serial and cheap; its arrays feed Phase B.
  if (!verifier.resolve_leaves().is_ok()) return std::nullopt;

  // Phase B: singleton and entry rules per chunk. These read the
  // now-complete kind_/start_/leaf arrays; any failure anywhere falls
  // back to serial for the exact error.
  parallel::run_shards(chunks, [&](int c) {
    const std::size_t begin = bounds[static_cast<std::size_t>(c)];
    const std::size_t end = bounds[static_cast<std::size_t>(c) + 1];
    if (!verifier.check_singletons(begin, end).is_ok() ||
        !verifier.check_entries(begin, end).is_ok())
      failed.store(true, std::memory_order_relaxed);
  });
  if (failed.load(std::memory_order_relaxed)) return std::nullopt;

  if (!verifier.check_entries_tail().is_ok()) return std::nullopt;
  if (!verifier.check_probe_paths().is_ok()) return std::nullopt;

  // Merge: chunks are address-ordered, so concatenating their patch lists
  // reproduces the serial scan's emission order exactly.
  VerifyReport merged;
  std::size_t total_patches = 0;
  for (const auto& r : chunk_reports) total_patches += r.patches.size();
  merged.patches.reserve(total_patches);
  for (const auto& r : chunk_reports) {
    merged.patches.insert(merged.patches.end(), r.patches.begin(), r.patches.end());
    merged.store_guards += r.store_guards;
    merged.rsp_guards += r.rsp_guards;
    merged.shadow_prologues += r.shadow_prologues;
    merged.shadow_epilogues += r.shadow_epilogues;
    merged.indirect_guards += r.indirect_guards;
    merged.aex_probes += r.aex_probes;
  }
  merged.instructions = n;

  if (!verifier.check_violation_stub(merged).is_ok()) return std::nullopt;
  return Result<VerifyReport>(std::move(merged));
}

}  // namespace

// ---- streaming cold-admission driver ----
//
// The incremental sibling of verify_sharded: the same Verifier phases over
// the same (eventually identical) instruction vector, but the pattern scan
// runs region by region as the StreamingDisassembler's tiled prefix grows
// behind the delivery watermark. Regions are cut at flow breaks — where
// the serial scan position provably lands — so the union of all regional
// scans is exactly one serial scan over the final vector, and the chunk
// reports, appended in address order across rounds, merge into the serial
// report byte for byte.

struct StreamingVerifier::Impl {
  Impl(BytesView text, const LoadedBinary& binary, const VerifyConfig& config)
      : text_(text),
        binary_(binary),
        config_(config),
        shards_(config.workers > 1 ? config.workers : 1),
        disasm_(text_, binary_, shards_),
        verifier_(disasm_.instrs(), binary_, config_) {
    // Policy cover depends only on metadata: fail the pipeline before any
    // descent work so the caller falls straight back to serial.
    if (!verifier_.check_policy_cover().is_ok()) failed_ = true;
  }

  // Scans [scanned_upto_, limit), cut at flow breaks into up to shards_
  // chunks run on the pool: per chunk the linear cross-check against the
  // staging bytes plus the pattern scan into a fresh chunk report. `limit`
  // must be a position the serial scan lands on (a flow-break boundary or
  // the final instruction count).
  void scan_region(std::size_t limit) {
    const std::vector<Instr>& instrs = disasm_.instrs();
    const std::size_t begin = scanned_upto_;
    if (failed_ || limit <= begin) return;
    std::vector<std::size_t> bounds;
    bounds.push_back(begin);
    const std::size_t n = limit - begin;
    // Shards scale with the region: a pool dispatch costs a wake/join
    // round trip, so the small per-round regions a paced stream produces
    // run inline on the pipeline worker instead of fanning out. The merged
    // report is chunking-independent (address-ordered concatenation), so
    // this only moves work between threads, never changes the verdict.
    constexpr std::size_t kMinInstrsPerShard = 256;
    int eff = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(shards_),
        std::max<std::size_t>(1, n / kMinInstrsPerShard)));
    for (int c = 1; c < eff; ++c) {
      std::size_t want =
          begin + n * static_cast<std::size_t>(c) / static_cast<std::size_t>(eff);
      std::size_t b = std::max({want, bounds.back(), begin + 1});
      while (b < limit && !instrs[b - 1].ends_flow()) ++b;
      if (b > bounds.back() && b < limit) bounds.push_back(b);
    }
    bounds.push_back(limit);
    const int chunks = static_cast<int>(bounds.size()) - 1;
    const std::size_t first = chunk_reports_.size();
    chunk_reports_.resize(first + static_cast<std::size_t>(chunks));
    std::atomic<bool> bad{false};
    parallel::run_shards(chunks, [&](int c) {
      const std::size_t b = bounds[static_cast<std::size_t>(c)];
      const std::size_t e = bounds[static_cast<std::size_t>(c) + 1];
      if (config_.cross_check_linear) {
        // Piecewise linear re-decode of the chunk's byte range: every byte
        // read here sits below the claim limit of the round that admitted
        // these instructions, hence below the delivery watermark — final.
        std::uint64_t off = instrs[b].addr - binary_.text_base;
        for (std::size_t i = b; i < e; ++i) {
          auto r = isa::decode_one(text_, off, binary_.text_base);
          if (!r.is_ok()) {
            bad.store(true, std::memory_order_relaxed);
            return;
          }
          isa::Instr ins = r.take();
          if (ins.addr != instrs[i].addr || ins.length != instrs[i].length ||
              ins.op != instrs[i].op) {
            bad.store(true, std::memory_order_relaxed);
            return;
          }
          off += ins.length;
        }
      }
      if (!verifier_
               .scan_patterns(b, e, chunk_reports_[first + static_cast<std::size_t>(c)])
               .is_ok())
        bad.store(true, std::memory_order_relaxed);
    });
    if (bad.load(std::memory_order_relaxed))
      failed_ = true;
    else
      scanned_upto_ = limit;
  }

  BytesView text_;
  LoadedBinary binary_;
  VerifyConfig config_;
  int shards_;
  StreamingDisassembler disasm_;
  Verifier verifier_;
  std::size_t scanned_upto_ = 0;  // flow-break boundary the scan reached
  std::vector<VerifyReport> chunk_reports_;
  bool failed_ = false;
};

StreamingVerifier::StreamingVerifier(BytesView text, const LoadedBinary& binary,
                                     const VerifyConfig& config)
    : impl_(std::make_unique<Impl>(text, binary, config)) {}

StreamingVerifier::~StreamingVerifier() = default;

bool StreamingVerifier::failed() const { return impl_->failed_; }

bool StreamingVerifier::advance(std::size_t watermark) {
  Impl& im = *impl_;
  if (im.failed_) return false;
  if (!im.disasm_.advance(watermark)) {
    im.failed_ = true;
    return false;
  }
  im.verifier_.grow();
  // Scan as far as the last flow break in the tiled prefix: nothing the
  // serial scan matches can straddle one (annotation patterns end at flow
  // breaks, never contain an interior one), so the boundary is exact and
  // the unscanned tail simply waits for the next round.
  const std::vector<Instr>& instrs = im.disasm_.instrs();
  std::size_t e = instrs.size();
  while (e > im.scanned_upto_ && !instrs[e - 1].ends_flow()) --e;
  im.scan_region(e);
  return !im.failed_;
}

std::optional<VerifyReport> StreamingVerifier::finish() {
  Impl& im = *impl_;
  if (im.failed_) return std::nullopt;
  if (!im.disasm_.finish()) {
    im.failed_ = true;
    return std::nullopt;
  }
  im.verifier_.grow();
  const std::vector<Instr>& instrs = im.disasm_.instrs();
  const std::size_t n = instrs.size();
  if (n == 0) {
    im.failed_ = true;  // serial disassemble() owns the empty-text error
    return std::nullopt;
  }
  im.scan_region(n);
  if (im.failed_) return std::nullopt;

  if (!im.verifier_.resolve_leaves().is_ok()) {
    im.failed_ = true;
    return std::nullopt;
  }

  // Phase B over a fresh flow-aligned chunking of the whole stream. The
  // singleton and entry rules only read the now-complete kind_/start_/leaf
  // arrays per instruction, so any chunking works — it need not match the
  // scan regions.
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (int c = 1; c < im.shards_; ++c) {
    std::size_t want =
        n * static_cast<std::size_t>(c) / static_cast<std::size_t>(im.shards_);
    std::size_t b = std::max({want, bounds.back(), std::size_t{1}});
    while (b < n && !instrs[b - 1].ends_flow()) ++b;
    if (b > bounds.back() && b < n) bounds.push_back(b);
  }
  bounds.push_back(n);
  const int chunks = static_cast<int>(bounds.size()) - 1;
  std::atomic<bool> bad{false};
  parallel::run_shards(chunks, [&](int c) {
    const std::size_t b = bounds[static_cast<std::size_t>(c)];
    const std::size_t e = bounds[static_cast<std::size_t>(c) + 1];
    if (!im.verifier_.check_singletons(b, e).is_ok() ||
        !im.verifier_.check_entries(b, e).is_ok())
      bad.store(true, std::memory_order_relaxed);
  });
  if (bad.load(std::memory_order_relaxed)) {
    im.failed_ = true;
    return std::nullopt;
  }

  if (!im.verifier_.check_entries_tail().is_ok() ||
      !im.verifier_.check_probe_paths().is_ok()) {
    im.failed_ = true;
    return std::nullopt;
  }

  // Merge: regions were scanned and appended in address order, so the
  // concatenation reproduces the serial scan's emission order exactly.
  VerifyReport merged;
  std::size_t total_patches = 0;
  for (const auto& r : im.chunk_reports_) total_patches += r.patches.size();
  merged.patches.reserve(total_patches);
  for (const auto& r : im.chunk_reports_) {
    merged.patches.insert(merged.patches.end(), r.patches.begin(), r.patches.end());
    merged.store_guards += r.store_guards;
    merged.rsp_guards += r.rsp_guards;
    merged.shadow_prologues += r.shadow_prologues;
    merged.shadow_epilogues += r.shadow_epilogues;
    merged.indirect_guards += r.indirect_guards;
    merged.aex_probes += r.aex_probes;
  }
  merged.instructions = n;

  if (!im.verifier_.check_violation_stub(merged).is_ok()) {
    im.failed_ = true;
    return std::nullopt;
  }
  return merged;
}

Result<VerifyReport> verify_disassembly(const Disassembly& dis, const LoadedBinary& binary,
                                        const VerifyConfig& config) {
  Verifier verifier(dis.instrs, binary, config);
  auto report = verifier.run();
  if (!report.is_ok()) return report;
  if (config.custom_check) {
    if (auto s = config.custom_check(dis, binary); !s.is_ok()) return s.error();
  }
  return report;
}

Result<VerifyReport> verify(const sgx::AddressSpace& space, const LoadedBinary& binary,
                            const VerifyConfig& config) {
  // Sharded fast path: any anomaly falls through to the serial pass below,
  // which owns error selection. custom_check needs the full Disassembly
  // structure, so such configs always take the serial path.
  if (config.workers > 1 && !config.custom_check) {
    if (auto sharded = verify_sharded(space, binary, config)) return std::move(*sharded);
  }
  auto dis = disassemble(space, binary);
  if (!dis.is_ok()) return dis.error();
  if (config.cross_check_linear) {
    const std::uint8_t* raw = space.raw(binary.text_base, binary.text_size);
    auto linear = isa::decode_all(BytesView(raw, binary.text_size), binary.text_base);
    if (!linear.is_ok())
      return Result<VerifyReport>::fail("verify_cross_check",
                                        "linear sweep failed: " + linear.message());
    const auto& a = dis.value().instrs;
    const auto& b = linear.value();
    if (a.size() != b.size())
      return Result<VerifyReport>::fail("verify_cross_check",
                                        "linear/recursive instruction counts differ");
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].addr != b[i].addr || a[i].length != b[i].length || a[i].op != b[i].op)
        return Result<VerifyReport>::fail("verify_cross_check",
                                          "linear/recursive decode disagreement");
    }
  }
  return verify_disassembly(dis.value(), binary, config);
}

Status rewrite_immediates(sgx::AddressSpace& space, const LoadedBinary& binary,
                          const VerifyReport& report) {
  const EnclaveLayout& lay = binary.layout;
  // Effective store bounds follow the *claimed* policy ladder (see
  // layout.h): each added policy tightens the lower bound.
  std::uint64_t store_lo = lay.enclave_base;
  if (binary.policies.has(kPolicyP3)) store_lo = binary.text_base;
  if (binary.policies.has(kPolicyP4)) store_lo = binary.data_base;

  auto value_of = [&](PatchKind kind) -> std::optional<std::uint64_t> {
    switch (kind) {
      case PatchKind::StoreLo: return store_lo;
      case PatchKind::StoreHi: return lay.stack_top() - 7;  // 8-byte stores stay inside
      case PatchKind::StackLo: return lay.stack_base;
      case PatchKind::StackHi: return lay.stack_top();
      case PatchKind::TextBase: return binary.text_base;
      case PatchKind::TextSize: return binary.text_size;
      case PatchKind::BtTable: return lay.bt_table_base;
      case PatchKind::SsPtr: return lay.ss_ptr_slot;
      case PatchKind::SsBase: return lay.shadow_base;
      case PatchKind::SsLimit: return lay.shadow_base + lay.shadow_size;
      case PatchKind::AexCount: return lay.aex_count_addr;
      case PatchKind::SsaMarker:
        return lay.ssa_addr + sgx::Enclave::kSsaMarkerOffset;
    }
    // A PatchKind without a rewrite rule (the enum grew) must be a hard
    // failure: silently patching 0 would e.g. turn a StoreHi-style bound
    // into "everything below 0 is allowed" — wide open.
    return std::nullopt;
  };

  for (const PatchSite& site : report.patches) {
    // Bounds check BEFORE touching memory: a patch site below the text base
    // or straddling the text end must be rejected without the raw access
    // ever happening (raw() on real hardware would be a wild read).
    if (site.field_addr < binary.text_base ||
        site.field_addr + 8 > binary.text_base + binary.text_size)
      return Status::fail("rewrite_oob", "patch site outside loaded text");
    std::optional<std::uint64_t> value = value_of(site.kind);
    if (!value.has_value())
      return Status::fail("rewrite_unknown_kind",
                          "patch site carries a kind with no rewrite rule");
    std::uint8_t* field = space.raw(site.field_addr, 8);
    if (field == nullptr)
      return Status::fail("rewrite_oob", "patch site not mapped");
    store_le64(field, *value);
  }
  return Status::ok();
}

}  // namespace deflection::verifier
