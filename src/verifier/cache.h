// Shared verified-binary admission cache (trusted, in-TCB).
//
// The paper's pitch is that in-enclave verification is cheap enough to run
// at load time; this cache makes it cheap to run *once per distinct binary*
// instead of once per enclave. A serving layer that provisions N workers
// with the same service — or re-provisions a quarantined worker with the
// binary it was already admitted with — pays disassembly + policy
// verification only on the first admission. Every later admission with the
// same key reuses the stored report and goes straight to
// rewrite_immediates() against that enclave's own layout.
//
// Key = (SHA-256 of the plaintext DXO bytes, claimed policy mask,
//        fingerprint of every verdict-relevant VerifyConfig field).
// A tampered binary, a different policy claim, or a changed verifier
// configuration all change the key, so a hit can only ever replay a verdict
// that the full verifier already produced for byte-identical input under an
// identical configuration — admission soundness is preserved. The cache
// additionally fails closed: any mismatch it can observe at lookup time
// (text size, patch sites out of range, unfingerprintable config) is a
// miss, never a downgraded hit.
//
// Patch sites are stored rebased to text-relative offsets, because
// different enclaves load the same text at different bases; lookup() maps
// them back onto the requesting enclave's text.
#pragma once

#include <map>
#include <mutex>
#include <optional>

#include "crypto/sha256.h"
#include "verifier/verify.h"

namespace deflection::verifier {

// Hash of every VerifyConfig field that can change the verifier's verdict
// or the produced patch list. Returns nullopt for configs that cannot be
// fingerprinted — a custom_check is an opaque std::function, so any config
// carrying one must never hit (or populate) the cache.
std::optional<crypto::Digest> verify_config_fingerprint(const VerifyConfig& config);

// Cache counters, snapshot via VerificationCache::stats().
struct CacheStats {
  std::uint64_t hits = 0;          // admissions served from the cache
  std::uint64_t misses = 0;        // admissions that ran the full verifier
  std::uint64_t bypasses = 0;      // lookups refused (unfingerprintable config)
  std::uint64_t insertions = 0;    // reports stored after a full verification
  std::uint64_t verify_ns_saved = 0;  // sum of the original verify time of every hit
};

class VerificationCache {
 public:
  // Returns the cached report rebased onto `binary`'s text, or nullopt on a
  // miss. Only verdicts for byte-identical (digest) binaries with an
  // identical claimed policy mask under an identical config can hit.
  std::optional<VerifyReport> lookup(const crypto::Digest& binary_digest,
                                     const LoadedBinary& binary,
                                     const VerifyConfig& config);

  // Stores a report the full verifier just produced for `binary`.
  // `verify_ns` is the wall time that verification took; it is credited to
  // verify_ns_saved on every later hit. Reports with patch sites outside
  // the loaded text, or configs that cannot be fingerprinted, are refused.
  void insert(const crypto::Digest& binary_digest, const LoadedBinary& binary,
              const VerifyConfig& config, const VerifyReport& report,
              std::uint64_t verify_ns);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  struct Key {
    crypto::Digest binary{};         // SHA-256 of the plaintext DXO bytes
    std::uint32_t policy_mask = 0;   // the binary's claimed PolicySet
    crypto::Digest config{};         // verify_config_fingerprint
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    VerifyReport report;             // patches hold text-relative offsets
    std::uint64_t text_size = 0;
    std::uint64_t verify_ns = 0;
  };

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  CacheStats stats_;
};

}  // namespace deflection::verifier
