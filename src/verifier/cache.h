// Shared verified-binary admission cache (trusted, in-TCB).
//
// The paper's pitch is that in-enclave verification is cheap enough to run
// at load time; this cache makes it cheap to run *once per distinct binary*
// instead of once per enclave. A serving layer that provisions N workers
// with the same service — or re-provisions a quarantined worker with the
// binary it was already admitted with — pays disassembly + policy
// verification only on the first admission. Every later admission with the
// same key reuses the stored report and goes straight to
// rewrite_immediates() against that enclave's own layout.
//
// Key = (SHA-256 of the plaintext DXO bytes, claimed policy mask,
//        fingerprint of every verdict-relevant VerifyConfig field).
// A tampered binary, a different policy claim, or a changed verifier
// configuration all change the key, so a hit can only ever replay a verdict
// that the full verifier already produced for byte-identical input under an
// identical configuration — admission soundness is preserved. The cache
// additionally fails closed: any mismatch it can observe at lookup time
// (text size, patch sites out of range, unfingerprintable config) is a
// miss, never a downgraded hit.
//
// Patch sites are stored rebased to text-relative offsets, because
// different enclaves load the same text at different bases; lookup() maps
// them back onto the requesting enclave's text.
//
// Single-flight admission (begin_admission): when N enclaves cold-admit
// the same key concurrently, exactly one caller (the leader) runs the full
// verifier; the rest block on the in-flight record and reuse the leader's
// verdict. A failed verification propagates the leader's exact error to
// every waiter and is never cached — the next admission of that key
// re-verifies from scratch. This fixes the cold-admission stampede where
// every worker of a fresh pool would redundantly verify the same binary.
#pragma once

#include <chrono>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "crypto/sha256.h"
#include "verifier/verify.h"

namespace deflection::verifier {

// Hash of every VerifyConfig field that can change the verifier's verdict
// or the produced patch list. Returns nullopt for configs that cannot be
// fingerprinted — a custom_check is an opaque std::function, so any config
// carrying one must never hit (or populate) the cache.
std::optional<crypto::Digest> verify_config_fingerprint(const VerifyConfig& config);

// Bounding knobs, passed at construction. The defaults reproduce the
// unbounded single-process cache exactly.
struct CacheOptions {
  // Maximum resident entries; 0 = unbounded. When a new entry would exceed
  // the bound, the least-recently-used entry (hits and parent adoptions
  // both refresh recency) is evicted and counted in CacheStats::evictions.
  // Eviction only ever costs a re-verification, never soundness: an evicted
  // key's next admission is an ordinary cold miss.
  std::size_t max_entries = 0;
};

// Cache counters, snapshot via VerificationCache::stats().
struct CacheStats {
  std::uint64_t hits = 0;          // admissions served from the cache
  std::uint64_t misses = 0;        // admissions that ran the full verifier
  std::uint64_t bypasses = 0;      // lookups refused (unfingerprintable config)
  std::uint64_t insertions = 0;    // reports stored after a full verification
  std::uint64_t verify_ns_saved = 0;  // sum of the original verify time of every hit
  // Admissions that blocked on another caller's in-flight verification
  // instead of running their own (begin_admission only; serial flows
  // leave this 0 and every other counter exactly as lookup()/insert()
  // would).
  std::uint64_t coalesced = 0;
  std::uint64_t evictions = 0;     // entries displaced by the max_entries bound
  // Subset of `hits` that this cache could only serve by consulting its
  // parent (read-through): the verdict was produced by a sibling cache
  // sharing the same parent, or preloaded into the parent from a sealed
  // store. Never counted as a miss — no verifier ran.
  std::uint64_t parent_hits = 0;
  // Entries adopted without a local full verification: imported from a
  // sealed store or copied down from the parent on a parent hit.
  std::uint64_t preloads = 0;

  // Front-end rollup: element-wise sum (used to aggregate per-shard
  // snapshots; every field is a monotonic counter).
  CacheStats& operator+=(const CacheStats& other);
};

// One cache entry in transportable form: the full key that names it plus
// the verdict with text-relative patch sites. This is the unit the sealed
// persistent store serializes and the parent-cache hook moves between
// caches — everything needed to replay the verdict for a byte-identical
// binary under an identical config, nothing tied to one enclave's base.
struct PortableEntry {
  crypto::Digest binary{};         // SHA-256 of the plaintext DXO bytes
  std::uint32_t policy_mask = 0;   // the binary's claimed PolicySet
  crypto::Digest config{};         // verify_config_fingerprint at insert time
  VerifyReport report;             // patches hold text-relative offsets
  std::uint64_t text_size = 0;
  std::uint64_t verify_ns = 0;
};

class VerificationCache {
 private:
  struct Key {
    crypto::Digest binary{};         // SHA-256 of the plaintext DXO bytes
    std::uint32_t policy_mask = 0;   // the binary's claimed PolicySet
    crypto::Digest config{};         // verify_config_fingerprint
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    VerifyReport report;             // patches hold text-relative offsets
    std::uint64_t text_size = 0;
    std::uint64_t verify_ns = 0;
    // Recency position in lru_ (front = most recently used); only
    // maintained while the entry is resident in entries_.
    std::list<Key>::iterator lru;
  };
  struct Inflight;  // one in-flight cold verification (defined in cache.cpp)

 public:
  VerificationCache() = default;
  explicit VerificationCache(const CacheOptions& options) : options_(options) {}

  // Read-through parent hook: when set, a local miss consults the parent
  // before electing a verification leader, and every locally produced
  // verdict is written through to the parent. A parent-served admission
  // counts as a hit (+parent_hits), never a miss — no verifier ran. The
  // parent is just another VerificationCache (typically shared by every
  // shard of a front-end) and must not itself point back at a child; lock
  // order is always child -> parent.
  void set_parent(std::shared_ptr<VerificationCache> parent);

  // Snapshot of every resident entry in transportable form (sealed-store
  // export, tests). Order is unspecified.
  std::vector<PortableEntry> export_entries() const;

  // Preloads a verdict produced elsewhere (sealed store, warm-boot path).
  // Fail-closed: refuses entries whose patch sites do not fall inside
  // [0, text_size) — a refused entry simply stays cold and the next
  // admission runs the full verifier. Returns whether the entry was
  // adopted; adoption counts in CacheStats::preloads.
  bool import_entry(const PortableEntry& entry);
  // Leader's handle on an in-flight admission. The leader MUST finish the
  // admission by calling exactly one of publish() (verification succeeded:
  // caches the report and hands it to every waiter) or fail() (propagates
  // the error to every waiter; nothing is cached, so the next admission of
  // this key re-verifies). If the ticket is destroyed unresolved — the
  // leader's frame unwound without publishing — waiters are released with
  // an "admission_abandoned" failure rather than blocking forever.
  class AdmissionTicket {
   public:
    AdmissionTicket() = default;
    AdmissionTicket(AdmissionTicket&& other) noexcept;
    AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
    AdmissionTicket(const AdmissionTicket&) = delete;
    AdmissionTicket& operator=(const AdmissionTicket&) = delete;
    ~AdmissionTicket();

    void publish(const LoadedBinary& binary, const VerifyReport& report,
                 std::uint64_t verify_ns);
    void fail(Status error);

   private:
    friend class VerificationCache;
    VerificationCache* cache_ = nullptr;
    std::shared_ptr<Inflight> rec_;
    Key key_{};
  };

  // Outcome of begin_admission() / poll_admission(). One of five shapes:
  //   Hit:     report engaged — a previous admission's cached verdict,
  //            rebased onto this enclave's text.
  //   Leader:  ticket engaged — the caller must run the full verifier and
  //            resolve the ticket (see AdmissionTicket).
  //   Waiter:  this call blocked on another caller's in-flight
  //            verification; report engaged if it succeeded, failure
  //            engaged with the leader's exact error otherwise (including
  //            "admission_timeout" when a bounded wait expired before the
  //            leader resolved — nothing is recorded, the leader runs on).
  //   InFlight: poll_admission() only — another caller's verification is
  //            in flight and the poll does not join it; nothing engaged,
  //            nothing recorded. Re-admit later, typically via the
  //            blocking begin_admission().
  //   Bypass:  the cache cannot serve this admission (unfingerprintable
  //            config, or an in-flight result that fails the closed-world
  //            rebase checks); the caller verifies on its own and nothing
  //            is recorded.
  struct Admission {
    enum class Role { Hit, Leader, Waiter, InFlight, Bypass };
    Role role = Role::Bypass;
    std::optional<VerifyReport> report;
    std::optional<Status> failure;
    AdmissionTicket ticket;
  };

  // Single-flight admission entry point: cache hit, leader election, or
  // blocking wait on the key's in-flight verification. Blocks only in the
  // Waiter case — until the leader resolves its ticket, or for at most
  // `max_wait` when one is given (a stream commit bounds the wait by its
  // remaining deadline; expiry yields a Waiter with "admission_timeout").
  Admission begin_admission(const crypto::Digest& binary_digest,
                            const LoadedBinary& binary, const VerifyConfig& config,
                            std::optional<std::chrono::nanoseconds> max_wait =
                                std::nullopt);

  // Non-blocking admission probe for streaming: identical to
  // begin_admission() for the Hit / Leader / Bypass outcomes (a Leader
  // ticket IS handed out — the stream holds it for its whole life), but an
  // in-flight key returns Role::InFlight immediately instead of joining
  // the waiter queue. Counts nothing in the InFlight case.
  Admission poll_admission(const crypto::Digest& binary_digest,
                           const LoadedBinary& binary, const VerifyConfig& config);

  // Number of callers currently blocked inside begin_admission() waiting
  // for an in-flight verification — introspection for deterministic
  // stampede tests (poll until the expected waiters queue up, then let the
  // leader resolve).
  std::size_t inflight_waiters() const;
  // Returns the cached report rebased onto `binary`'s text, or nullopt on a
  // miss. Only verdicts for byte-identical (digest) binaries with an
  // identical claimed policy mask under an identical config can hit.
  std::optional<VerifyReport> lookup(const crypto::Digest& binary_digest,
                                     const LoadedBinary& binary,
                                     const VerifyConfig& config);

  // Admission probe without a loaded enclave: true iff a verdict for
  // (digest, claimed mask, config) is resident here or in the parent. Lets
  // register-time admission skip the scratch-enclave provision+load
  // entirely — a resident verdict already proves the full verifier passed
  // a byte-identical binary under this exact config, and the serving slot
  // re-checks via begin_admission() at bind time anyway. A parent-served
  // probe adopts the entry locally (hit + parent_hit + preload, exactly
  // like lookup()); a negative probe counts NOTHING — misses must keep
  // meaning "a full verifier run", and the caller's cold admission will
  // record it.
  bool warm_probe(const crypto::Digest& binary_digest, std::uint32_t claimed_mask,
                  const VerifyConfig& config);

  // Stores a report the full verifier just produced for `binary`.
  // `verify_ns` is the wall time that verification took; it is credited to
  // verify_ns_saved on every later hit. Reports with patch sites outside
  // the loaded text, or configs that cannot be fingerprinted, are refused.
  void insert(const crypto::Digest& binary_digest, const LoadedBinary& binary,
              const VerifyConfig& config, const VerifyReport& report,
              std::uint64_t verify_ns);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  // Rebases a verifier-produced report to text-relative offsets, refusing
  // (nullopt) anything whose patch sites do not fall inside the loaded
  // text. Shared by insert() and the leader's publish().
  static std::optional<Entry> make_entry(const LoadedBinary& binary,
                                         const VerifyReport& report,
                                         std::uint64_t verify_ns);
  // Maps a stored entry back onto `binary`'s text; nullopt if any
  // observable disagreement (text size, site range) means the entry does
  // not apply. Shared by lookup() and the waiter wake-up path.
  static std::optional<VerifyReport> rebase(const Entry& entry,
                                            const LoadedBinary& binary);

  // Validates a portable entry's patch sites against its own text_size
  // (overflow-safe); the storage-form analogue of make_entry's range check.
  static bool portable_sites_ok(const PortableEntry& entry);

  // Shared front half of begin_admission()/poll_admission(), under mutex_:
  // resolves Hit (local or parent read-through), Bypass, and Leader
  // election into `adm` and returns false; returns true with `rec` set
  // when the key has an in-flight verification the caller may join.
  bool resolve_admission_locked(const crypto::Digest& binary_digest,
                                const LoadedBinary& binary,
                                const std::optional<crypto::Digest>& fp,
                                Admission& adm, std::shared_ptr<Inflight>& rec,
                                Key& key);
  // Under mutex_: (re)stores an entry at key, refreshing recency and
  // evicting the LRU entry when the max_entries bound would be exceeded.
  void store_locked(const Key& key, Entry entry);
  // Under mutex_: marks key most-recently-used.
  void touch_locked(const Entry& entry);
  // Under mutex_ of the CHILD (lock order child -> parent): resident-entry
  // probe / write-through target used by the parent hook. Both take this
  // cache's own mutex.
  std::optional<Entry> parent_peek(const Key& key);
  void parent_put(const Key& key, const Entry& entry);

  CacheOptions options_;
  std::shared_ptr<VerificationCache> parent_;
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used resident key
  std::map<Key, std::shared_ptr<Inflight>> inflight_;
  std::size_t waiting_ = 0;  // callers blocked inside begin_admission()
  CacheStats stats_;
};

}  // namespace deflection::verifier
